"""The declarative :class:`JoinPlan` IR: what a join *will* do, as data.

One generic :func:`compile_join` turns (op, index,
:class:`~repro.runtime.config.RuntimeConfig`) into a linear stage list —

    index build → op planning stages → [shard plan] → batch launches
    → [resilience] → [checkpoint] → merge

— without executing anything. The op (a strategy from the
:mod:`repro.runtime.ops` registry) declares its planning stages (a
result-size :class:`EstimateStage` for single-pass joins, an
:class:`ExpansionStage` for the multi-round kNN driver), how its query
side shards across devices, and which kernel the launch stage records;
``compile_self_join`` / ``compile_similarity_join`` /
``compile_knn_join`` are thin op-constructing wrappers over the one
pipeline. The :class:`~repro.runtime.runner.Runner` then walks the
stages; facades no longer own execution logic. Because a plan is plain
data, it can be inspected, printed (``describe()``), and transformed:
:func:`apply_resilience` is such a transform, splicing a
:class:`ResilienceStage` into a compiled plan when the runtime carries a
fault plan or a recovery policy.

The sharded case is compiled here too (the shard plan is computed at
compile time, the device schedule is resolved by the runner), so a
single-device run is simply the plan without a :class:`ShardStage` — one
shard covering every query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.grid import GridIndex
from repro.runtime.config import NATIVE_ENGINE, RuntimeConfig
from repro.runtime.ops import BipartiteOp, JoinOp, KnnJoinOp, SelfJoinOp

if TYPE_CHECKING:
    from repro.multigpu.sharding import ShardPlan
    from repro.resilience.faults import FaultPlan
    from repro.resilience.policy import RecoveryPolicy

__all__ = [
    "CheckpointStage",
    "EstimateStage",
    "ExpansionStage",
    "IndexStage",
    "JoinPlan",
    "LaunchStage",
    "MergeStage",
    "NativeLaunchStage",
    "ResilienceStage",
    "ShardStage",
    "apply_checkpoint",
    "apply_resilience",
    "compile_join",
    "compile_knn_join",
    "compile_self_join",
    "compile_similarity_join",
]


@dataclass(frozen=True)
class IndexStage:
    """Record of the ε-grid build this plan runs against.

    ``reused=True`` marks a plan compiled against a pre-built index (a
    session-cache hit in :mod:`repro.serve`): the grid build — and any
    :class:`~repro.core.patterns.PatternPlan` geometry memoized on the
    index — was skipped, not performed by this plan.
    """

    epsilon: float
    num_points: int
    ndim: int
    num_cells: int
    reused: bool = False


@dataclass(frozen=True)
class EstimateStage:
    """How the result size is estimated before batch planning."""

    mode: str  # "head" (WORKQUEUE) or "strided"
    sample_fraction: float
    safety_z: float


@dataclass(frozen=True)
class ExpansionStage:
    """The kNN driver's ε-schedule: multi-round residual sub-plans.

    Replaces the single-pass :class:`EstimateStage`: instead of one
    estimated launch, the runner loops rounds ``r = 0, 1, …`` at radius
    ``epsilon0 * growth**r``, compiling a residual bipartite sub-plan
    over the still-pending queries each time, until every query has k
    in-radius neighbors (or ``max_rounds`` is exhausted).
    """

    k: int
    epsilon0: float
    growth: float
    max_rounds: int


@dataclass(frozen=True)
class ShardStage:
    """Device-level partitioning: present only on pooled plans."""

    plan: "ShardPlan"
    schedule: str
    num_devices: int


@dataclass(frozen=True)
class LaunchStage:
    """How each planned batch is launched on an executor."""

    kernel: str
    engine: str
    replay_mode: str
    issue_order: str  # "fifo" (WORKQUEUE) or seeded "random"
    coop_groups: bool
    num_streams: int
    result_capacity: int


@dataclass(frozen=True)
class NativeLaunchStage:
    """The fidelity-free array-engine launch (``engine="native"``).

    No batches, no streams, no warp accounting: the runner hands the op
    to :mod:`repro.runtime.native`, which walks ``chunk_pairs``-bounded
    cell-pair blocks over the grid's neighbor topology in ``order``
    (``"sortbywl"`` = the paper's heaviest-cells-first work ordering,
    ``"natural"`` = dataset order) and refines them with vectorized
    distance passes. ``workers`` records the pooled dispatch backend.
    """

    kernel: str
    engine: str  # always "native"
    order: str  # "sortbywl" or "natural"
    chunk_pairs: int
    workers: str  # "inline" or "process"


@dataclass(frozen=True)
class ResilienceStage:
    """Fault injection and/or self-healing wrapped around execution."""

    fault_plan: "FaultPlan | None"
    recovery: "RecoveryPolicy | None"


@dataclass(frozen=True)
class CheckpointStage:
    """Durable shard journaling wrapped around execution.

    ``fingerprint`` is the run's content identity
    (:func:`repro.resilience.checkpoint.run_fingerprint`), computed at
    compile time so the runner — and anyone inspecting the plan — knows
    exactly which journal the run writes and resumes from.
    """

    directory: str
    keep: bool
    fingerprint: str


@dataclass(frozen=True)
class MergeStage:
    """How shard/batch results become the final canonical result."""

    dedup: bool
    description: str


Stage = (
    IndexStage
    | EstimateStage
    | ExpansionStage
    | ShardStage
    | LaunchStage
    | NativeLaunchStage
    | ResilienceStage
    | CheckpointStage
    | MergeStage
)


@dataclass(frozen=True)
class JoinPlan:
    """A compiled join: op + index + config + the declarative stage list."""

    op: JoinOp
    index: GridIndex
    config: RuntimeConfig
    stages: tuple[Stage, ...]
    subset: np.ndarray | None = field(default=None, repr=False)

    def stage(self, kind: type) -> Stage | None:
        """The first stage of the given type, or ``None``."""
        for s in self.stages:
            if isinstance(s, kind):
                return s
        return None

    @property
    def pooled(self) -> bool:
        return self.stage(ShardStage) is not None

    @property
    def shard_stage(self) -> ShardStage | None:
        return self.stage(ShardStage)

    @property
    def launch_stage(self) -> LaunchStage | NativeLaunchStage:
        stage = self.stage(LaunchStage)
        return stage if stage is not None else self.stage(NativeLaunchStage)

    @property
    def expansion_stage(self) -> ExpansionStage | None:
        return self.stage(ExpansionStage)

    @property
    def resilience_stage(self) -> ResilienceStage | None:
        return self.stage(ResilienceStage)

    @property
    def checkpoint_stage(self) -> CheckpointStage | None:
        return self.stage(CheckpointStage)

    @property
    def merge_stage(self) -> MergeStage:
        return self.stage(MergeStage)

    def describe(self) -> str:
        """One line per stage — the plan as a human reads it."""
        lines = [f"JoinPlan[{self.op.kind}] {self.merge_stage.description}"]
        for s in self.stages:
            if isinstance(s, IndexStage):
                reused = " (reused)" if s.reused else ""
                lines.append(
                    f"  index    eps={s.epsilon:g} n={s.num_points} "
                    f"dim={s.ndim} cells={s.num_cells}{reused}"
                )
            elif isinstance(s, EstimateStage):
                z = f" z={s.safety_z:g}" if s.safety_z else ""
                lines.append(
                    f"  estimate {s.mode} sample={s.sample_fraction:g}{z}"
                )
            elif isinstance(s, ExpansionStage):
                lines.append(
                    f"  expand   k={s.k} eps0={s.epsilon0:g} "
                    f"growth={s.growth:g} max_rounds={s.max_rounds}"
                )
            elif isinstance(s, ShardStage):
                lines.append(
                    f"  shard    {len(s.plan.shards)} shards "
                    f"{s.plan.planner}/{s.schedule} over {s.num_devices} devices"
                )
            elif isinstance(s, LaunchStage):
                coop = " coop" if s.coop_groups else ""
                lines.append(
                    f"  launch   {s.kernel} engine={s.engine} "
                    f"issue={s.issue_order}{coop} streams={s.num_streams} "
                    f"capacity={s.result_capacity}"
                )
            elif isinstance(s, NativeLaunchStage):
                workers = f" workers={s.workers}" if s.workers != "inline" else ""
                lines.append(
                    f"  launch   {s.kernel} engine=native order={s.order} "
                    f"chunk={s.chunk_pairs}{workers}"
                )
            elif isinstance(s, ResilienceStage):
                parts = []
                if s.fault_plan is not None and not s.fault_plan.is_empty:
                    parts.append(f"faults[{s.fault_plan.describe()}]")
                if s.recovery is not None:
                    parts.append("recovery")
                lines.append(f"  resil    {' '.join(parts) or 'none'}")
            elif isinstance(s, CheckpointStage):
                keep = " keep" if s.keep else ""
                lines.append(
                    f"  ckpt     dir={s.directory} run={s.fingerprint[:12]}…{keep}"
                )
            elif isinstance(s, MergeStage):
                lines.append(f"  merge    dedup={s.dedup}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _index_stage(index: GridIndex, *, reused: bool = False) -> IndexStage:
    return IndexStage(
        epsilon=float(index.epsilon),
        num_points=index.num_points,
        ndim=index.ndim,
        num_cells=index.num_nonempty_cells,
        reused=reused,
    )


def _launch_stage(
    kernel_name: str, runtime: RuntimeConfig
) -> LaunchStage | NativeLaunchStage:
    opt = runtime.optimization
    if runtime.engine == NATIVE_ENGINE:
        from repro.runtime.native import NATIVE_CHUNK_PAIRS

        return NativeLaunchStage(
            kernel=kernel_name,
            engine=NATIVE_ENGINE,
            order="sortbywl" if opt.uses_sorted_points else "natural",
            chunk_pairs=NATIVE_CHUNK_PAIRS,
            workers=runtime.sharding.workers if runtime.pooled else "inline",
        )
    return LaunchStage(
        kernel=kernel_name,
        engine=runtime.engine,
        replay_mode=runtime.replay_mode,
        issue_order="fifo" if opt.work_queue else "random",
        coop_groups=opt.work_queue and opt.k > 1,
        num_streams=opt.num_streams,
        result_capacity=opt.batch_result_capacity,
    )


def _pooled_description(runtime: RuntimeConfig, inner: str) -> str:
    s = runtime.sharding
    tag = " resilient" if runtime.recovery is not None else ""
    return f"multigpu[{s.num_devices}dev {s.planner}/{s.schedule}{tag}] {inner}"


def compile_join(
    op: JoinOp,
    index: GridIndex,
    runtime: RuntimeConfig,
    *,
    subset: np.ndarray | None = None,
    index_reused: bool = False,
) -> JoinPlan:
    """Compile any registered op over a prebuilt index into a plan.

    The one generic pipeline: the op validates the runtime, contributes
    its planning stages (estimate or expansion), and — on pooled
    runtimes, when the op is shardable and no ``subset`` narrows the
    query side — its device-level shard plan. Resilience and
    checkpointing are applied as plan transforms at the end, so every
    operation inherits them uniformly.

    ``subset`` restricts the query side (one shard of a larger join) and
    forces a single-device plan — sharding a shard is not a thing.
    ``index_reused`` marks the index as served from a cache (the plan
    skips the build cost; see :class:`IndexStage`).
    """
    op.validate(runtime)
    opt = runtime.optimization
    stages: list[Stage] = [_index_stage(index, reused=index_reused)]
    stages.extend(op.plan_stages(index, runtime))
    dedup = False
    description = op.describe(opt)
    if runtime.pooled and subset is None and op.shardable:
        shard_plan = op.shard_plan(index, runtime)
        stages.append(
            ShardStage(
                plan=shard_plan,
                schedule=runtime.sharding.schedule,
                num_devices=runtime.sharding.num_devices,
            )
        )
        dedup = shard_plan.may_duplicate
        description = _pooled_description(runtime, description)
    elif runtime.pooled and not op.shardable:
        # driver ops shard their per-round sub-plans, not the plan itself;
        # the description still records the pooled execution shape
        description = _pooled_description(runtime, description)
    stages.append(_launch_stage(op.kernel_name, runtime))
    stages.append(MergeStage(dedup=dedup, description=description))
    plan = JoinPlan(
        op=op, index=index, config=runtime, stages=tuple(stages), subset=subset
    )
    return apply_checkpoint(apply_resilience(plan))


def compile_self_join(
    index: GridIndex,
    runtime: RuntimeConfig,
    *,
    subset: np.ndarray | None = None,
    index_reused: bool = False,
) -> JoinPlan:
    """Compile a self-join over a prebuilt index into a :class:`JoinPlan`.

    A thin wrapper over :func:`compile_join` with a
    :class:`~repro.runtime.ops.SelfJoinOp`.
    """
    return compile_join(
        SelfJoinOp(include_self=runtime.include_self),
        index,
        runtime,
        subset=subset,
        index_reused=index_reused,
    )


def compile_similarity_join(
    index: GridIndex,
    queries,
    runtime: RuntimeConfig,
    *,
    subset: np.ndarray | None = None,
    index_reused: bool = False,
) -> JoinPlan:
    """Compile a bipartite join (``queries`` ⋈ indexed dataset).

    A thin wrapper over :func:`compile_join` with a
    :class:`~repro.runtime.ops.BipartiteOp`. The configuration must use
    ``pattern="full"`` — the unidirectional patterns exploit self-join
    symmetry the bipartite join does not have. ``index_reused`` marks
    B's index as served from a cache.
    """
    return compile_join(
        BipartiteOp(queries),
        index,
        runtime,
        subset=subset,
        index_reused=index_reused,
    )


def compile_knn_join(
    points,
    k: int,
    runtime: RuntimeConfig,
    *,
    epsilon0: float | None = None,
    growth: float = 2.0,
    max_rounds: int | None = None,
    index_factory=None,
    index_reused: bool = False,
) -> JoinPlan:
    """Compile the k-nearest-neighbor join of ``points`` with itself.

    The plan is a multi-round *driver*: an :class:`ExpansionStage`
    records the ε-schedule (``epsilon0 * growth**r``, defaulting
    ``epsilon0`` to the density heuristic of
    :func:`~repro.runtime.ops.default_knn_epsilon`), and the runner
    compiles, executes and journals one residual bipartite sub-plan per
    round — each round re-queries only the still-pending points and
    inherits the runtime's engine/sharding/recovery/fault/checkpoint
    configuration unchanged. ``index_factory`` (``epsilon ->
    GridIndex``) lets a caching caller supply each round's grid;
    ``index_reused`` marks the round-0 index as cache-served.
    """
    kwargs = {"epsilon0": epsilon0, "growth": growth, "index_factory": index_factory}
    if max_rounds is not None:
        kwargs["max_rounds"] = max_rounds
    op = KnnJoinOp(points, k, **kwargs)
    index = op.build_index(op.epsilon0)
    return compile_join(op, index, runtime, index_reused=index_reused)


def apply_resilience(plan: JoinPlan) -> JoinPlan:
    """Splice a :class:`ResilienceStage` in front of the merge stage.

    A plan transform, not an execution flag: the returned plan *is* the
    resilient plan. No-op when the runtime carries neither a non-empty
    fault plan nor (on pooled plans) a recovery policy, or when the stage
    is already present.
    """
    rc = plan.config
    if plan.resilience_stage is not None:
        return plan
    faults = rc.fault_plan if rc.fault_plan is not None and not rc.fault_plan.is_empty else None
    recovery = rc.recovery if plan.pooled else None
    if faults is None and recovery is None:
        return plan
    stage = ResilienceStage(fault_plan=faults, recovery=recovery)
    stages = list(plan.stages)
    stages.insert(len(stages) - 1, stage)  # just before MergeStage
    return replace(plan, stages=tuple(stages))


def apply_checkpoint(plan: JoinPlan) -> JoinPlan:
    """Splice a :class:`CheckpointStage` in front of the merge stage.

    Like :func:`apply_resilience`, a plan transform: the returned plan
    journals each completed shard durably under the run's content
    fingerprint and is what ``Runner.resume`` accepts. No-op when the
    runtime carries no :class:`~repro.runtime.config.CheckpointConfig`
    or the stage is already present.
    """
    rc = plan.config
    if rc.checkpoint is None or plan.checkpoint_stage is not None:
        return plan
    from repro.resilience.checkpoint import run_fingerprint

    stage = CheckpointStage(
        directory=rc.checkpoint.directory,
        keep=rc.checkpoint.keep,
        fingerprint=run_fingerprint(plan),
    )
    stages = list(plan.stages)
    stages.insert(len(stages) - 1, stage)  # just before MergeStage
    return replace(plan, stages=tuple(stages))

"""The operation registry: every join workload as a declarative strategy.

A :class:`~repro.runtime.plan.JoinPlan` is op-agnostic — index, estimate,
shard, launch, merge — and one generic
:func:`~repro.runtime.plan.compile_join` builds the stage list for *any*
registered operation. What differs between workloads is bundled here, on
the op object itself:

- how the query order D' is derived (and restricted to a shard's subset),
  how the result size is estimated, and which kernel with which argument
  pack runs each batch (``prepare`` / ``make_args`` — the shard-execution
  half);
- which planning stages the compiled plan carries, how the query side is
  sharded across devices, and which bytes beyond the indexed dataset
  enter the run's checkpoint fingerprint (``plan_stages`` /
  ``shard_plan`` / ``fingerprint_extras`` — the compile half).

Three operations register themselves: :class:`SelfJoinOp` (kind
``"self"``), :class:`BipartiteOp` (kind ``"bipartite"``) and
:class:`KnnJoinOp` (kind ``"knn"``) — the adaptive ε-expansion
k-nearest-neighbor driver whose rounds are residual bipartite sub-plans
(see :meth:`repro.runtime.runner.Runner`). New workload families add a
class here and decorate it with :func:`register_op`; they inherit
sharding, resilience, checkpointing and serving without touching the
runner.

The self/bipartite bodies are the former private planning code of
:class:`~repro.core.selfjoin.SelfJoin` and
:class:`~repro.core.join.SimilarityJoin`, moved — not rewritten — so the
refactor preserves every result bit-for-bit (the golden equivalence suite
in ``tests/runtime`` holds it to that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.batching import estimate_result_size_detailed
from repro.core.bipartite_kernels import BipartiteKernelArgs, bipartite_kernel
from repro.core.config import OptimizationConfig
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.core.sortbywl import point_workloads, sort_by_workload
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_neighbor_counts, bipartite_workloads
from repro.simt import AtomicCounter
from repro.util import as_points_array, stable_argsort_desc

__all__ = [
    "OPS",
    "BipartiteOp",
    "JoinOp",
    "KnnConvergenceError",
    "KnnJoinOp",
    "KnnResult",
    "SelfJoinOp",
    "ShardPrep",
    "default_knn_epsilon",
    "get_op",
    "register_op",
]

#: kind -> op class, filled by :func:`register_op`
OPS: dict[str, type] = {}


def register_op(cls: type) -> type:
    """Class decorator: register an operation under its ``kind``.

    The registry is what makes the compile layer open: generic
    ``compile_join`` consults only the op protocol, and
    :func:`get_op` lets callers (the serving layer, benchmark executors)
    resolve an op class from its wire-level kind string.
    """
    kind = getattr(cls, "kind", "")
    if not kind:
        raise ValueError("an op class must define a non-empty `kind`")
    OPS[kind] = cls
    return cls


def get_op(kind: str) -> type:
    """The registered op class for ``kind``; raises ``KeyError`` if absent."""
    try:
        return OPS[kind]
    except KeyError:
        raise KeyError(
            f"unknown op kind {kind!r}; registered: {sorted(OPS)}"
        ) from None


@dataclass(frozen=True)
class ShardPrep:
    """Everything the launch stage needs about one shard's queries.

    ``order`` is the (possibly workload-sorted) query id sequence D';
    ``estimate`` the planned result size; ``weights`` the per-query
    workload estimates when balanced batching is on, else ``None``.
    """

    order: np.ndarray
    estimate: int
    weights: np.ndarray | None


class JoinOp:
    """The declarative protocol generic ``compile_join`` asks of an op.

    Subclasses set ``kind`` (the registry key and wire-level name),
    ``kernel_name`` (recorded on the plan's launch stage) and
    ``shardable`` (whether a pooled runtime splits *this plan* into a
    device-level :class:`~repro.runtime.plan.ShardStage`; multi-round
    driver ops shard their sub-plans instead), and override the hooks
    their workload needs. The defaults describe a single-pass batched
    join.
    """

    kind = ""
    kernel_name = ""
    shardable = True

    def validate(self, runtime) -> None:
        """Reject runtime configs this op cannot honor (default: none)."""

    def plan_stages(self, index: GridIndex, runtime) -> list:
        """Op-specific planning stages between index and shard/launch."""
        from repro.runtime.plan import EstimateStage

        opt = runtime.optimization
        return [
            EstimateStage(
                mode="head" if opt.work_queue else "strided",
                sample_fraction=opt.sample_fraction,
                safety_z=runtime.estimate_safety_z,
            )
        ]

    def shard_plan(self, index: GridIndex, runtime):
        """Device-level shard plan of the query side (pooled runtimes)."""
        raise NotImplementedError(f"op {self.kind!r} does not shard")

    def fingerprint_extras(self) -> tuple[bytes, ...]:
        """Bytes beyond the indexed dataset that identify this op's run
        (query sides, parameter schedules); folded into
        :func:`repro.resilience.checkpoint.run_fingerprint`."""
        return ()


@register_op
class SelfJoinOp(JoinOp):
    """The self-join's op: symmetric patterns, in-index queries."""

    kind = "self"
    kernel_name = "selfjoin_kernel"
    kernel = staticmethod(selfjoin_kernel)

    def __init__(self, *, include_self: bool = True):
        self.include_self = include_self

    def shard_plan(self, index: GridIndex, runtime):
        from repro.multigpu.sharding import plan_shards

        return plan_shards(
            index,
            runtime.sharding.num_shards,
            runtime.sharding.planner,
            pattern=runtime.optimization.pattern,
        )

    def describe(self, cfg: OptimizationConfig) -> str:
        return cfg.describe()

    def result_epsilon(self, index: GridIndex) -> float:
        return index.epsilon

    def total_points(self, index: GridIndex) -> int:
        """Query-side cardinality of the unsharded join."""
        return index.num_points

    def prepare(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        *,
        subset: np.ndarray | None,
        safety_z: float,
    ) -> ShardPrep:
        """Derive D', the result-size estimate and batch weights.

        ``subset`` restricts the *query* side to the given point ids — the
        candidate side always sees the whole index, so the result is
        exactly the full join's rows whose query point lies in the subset.
        """
        if cfg.uses_sorted_points:
            order = sort_by_workload(index, cfg.pattern)
            if subset is not None:
                keep = np.zeros(index.num_points, dtype=bool)
                keep[np.asarray(subset, dtype=np.int64)] = True
                order = order[keep[order]]  # D' restricted, rank order kept
        elif subset is not None:
            order = np.asarray(subset, dtype=np.int64)
        else:
            order = np.arange(index.num_points, dtype=np.int64)

        detailed = estimate_result_size_detailed(
            index,
            sample_fraction=cfg.sample_fraction,
            mode="head" if cfg.work_queue else "strided",
            order=order if cfg.work_queue else None,
            include_self=self.include_self,
            subset=subset,
        )
        est = detailed.with_margin(safety_z) if safety_z > 0 else detailed.estimate

        weights = (
            point_workloads(index, cfg.pattern)[order].astype(float)
            if cfg.balanced_batches
            else None
        )
        return ShardPrep(order=order, estimate=est, weights=weights)

    def make_args(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        order: np.ndarray,
        counter: AtomicCounter | None,
    ):
        def factory(batch: np.ndarray) -> KernelArgs:
            return KernelArgs(
                index=index,
                batch=batch,
                k=cfg.k,
                pattern=cfg.pattern,
                include_self=self.include_self,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        return factory


@register_op
class BipartiteOp(JoinOp):
    """The bipartite join's op: external queries, full pattern only."""

    kind = "bipartite"
    kernel_name = "bipartite_kernel"
    kernel = staticmethod(bipartite_kernel)

    def __init__(self, queries):
        self.queries = as_points_array(queries)

    def validate(self, runtime) -> None:
        if runtime.optimization.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "bipartite join requires pattern='full'"
            )

    def shard_plan(self, index: GridIndex, runtime):
        from repro.multigpu.sharding import plan_query_shards

        workloads, _ = bipartite_workloads(index, self.queries)
        return plan_query_shards(
            workloads.astype(np.float64),
            runtime.sharding.num_shards,
            runtime.sharding.planner,
        )

    def fingerprint_extras(self) -> tuple[bytes, ...]:
        from repro.grid import dataset_fingerprint

        return (dataset_fingerprint(self.queries).encode(),)

    def describe(self, cfg: OptimizationConfig) -> str:
        return f"bipartite {cfg.describe()}"

    def result_epsilon(self, index: GridIndex) -> float:
        return float(index.epsilon)

    def total_points(self, index: GridIndex) -> int:
        return len(self.queries)

    def prepare(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        *,
        subset: np.ndarray | None,
        safety_z: float,
    ) -> ShardPrep:
        """Derive the shard's query order, estimate and batch weights.

        The bipartite estimator has no sampling-error model, so
        ``safety_z`` does not apply here (an overflow re-plans instead).
        Workloads are quantified once and reused for both the SORTBYWL
        order and the balanced-batch weights.
        """
        queries = self.queries
        ids = (
            np.asarray(subset, dtype=np.int64)
            if subset is not None
            else np.arange(len(queries), dtype=np.int64)
        )

        workloads, _ = bipartite_workloads(index, queries[ids])
        if cfg.uses_sorted_points:
            order = ids[stable_argsort_desc(workloads)]
        else:
            order = ids

        est = self._estimate(index, cfg, ids, order)
        weights = None
        if cfg.balanced_batches:
            by_id = np.zeros(len(queries), dtype=np.float64)
            by_id[ids] = workloads
            weights = by_id[order]
        return ShardPrep(order=order, estimate=est, weights=weights)

    def _estimate(self, index, cfg, ids, order) -> int:
        nq = len(ids)
        if nq == 0 or index.num_points == 0:
            return 0
        sample_size = min(nq, max(1, int(round(nq * cfg.sample_fraction))))
        if cfg.work_queue:
            sample = order[:sample_size]  # heaviest queries: overestimates
        else:
            step = max(1, nq // sample_size)
            sample = ids[::step]
        if len(sample) == 0:
            return 0
        counts = bipartite_neighbor_counts(index, self.queries[sample])
        return int(np.ceil(counts.sum() * (nq / len(sample))))

    def make_args(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        order: np.ndarray,
        counter: AtomicCounter | None,
    ):
        def factory(batch: np.ndarray) -> BipartiteKernelArgs:
            return BipartiteKernelArgs(
                index=index,
                queries=self.queries,
                batch=batch,
                k=cfg.k,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        return factory


# ----------------------------------------------------------------------
# The k-nearest-neighbor join: a multi-round driver op


_KNN_MAX_ROUNDS = 48


@dataclass(frozen=True)
class KnnResult:
    """k nearest neighbors of every point (excluding the point itself).

    ``total_seconds`` sums the simulated time of every ε-expansion round
    (resume-stable: journaled rounds replay their recorded timings), and
    the ``pairs``/``num_pairs``/``iter_pairs`` surface mirrors
    :class:`~repro.core.result.JoinResult` so serving-layer accounting
    and streaming work on KNN results unchanged.
    """

    indices: np.ndarray  # (N, k) neighbor ids, nearest first
    distances: np.ndarray  # (N, k) matching distances
    rounds: int  # ε-expansion rounds executed
    final_epsilon: float  # radius that finalized the last points
    total_seconds: float = 0.0  # simulated seconds across all rounds

    @property
    def pairs(self) -> np.ndarray:
        """``(N*k, 2)`` rows ``(query, neighbor)``, each query's k nearest
        in order — the join-shaped view of the neighbor lists."""
        n, k = self.indices.shape
        queries = np.repeat(np.arange(n, dtype=np.int64), k)
        return np.column_stack([queries, self.indices.reshape(-1)])

    @property
    def num_pairs(self) -> int:
        return int(self.indices.size)

    def iter_pairs(self, chunk: int | None = None) -> Iterator[np.ndarray]:
        """Yield the join-shaped pairs in blocks of ``chunk`` rows."""
        pairs = self.pairs
        if chunk is None:
            if len(pairs):
                yield pairs
            return
        if chunk < 1:
            raise ValueError("chunk must be a positive row count")
        for start in range(0, len(pairs), chunk):
            yield pairs[start : start + chunk]


class KnnConvergenceError(RuntimeError):
    """The ε-expansion ran out of rounds with queries still pending.

    Carries the unfinished query ids (``pending``), the rounds executed
    and the last radius tried, so callers can diagnose the dataset (or
    re-run with a larger ``epsilon0``/``max_rounds``).
    """

    def __init__(self, pending: np.ndarray, *, rounds: int, epsilon: float):
        self.pending = np.asarray(pending, dtype=np.int64)
        self.rounds = int(rounds)
        self.epsilon = float(epsilon)
        super().__init__(
            f"kNN expansion failed to converge after {self.rounds} rounds "
            f"(last ε={self.epsilon:g}); {len(self.pending)} queries pending"
        )


def default_knn_epsilon(points: np.ndarray, k: int) -> float:
    """ε whose ball is expected to hold ~2k neighbors under uniformity."""
    n, d = points.shape
    spans = points.max(axis=0) - points.min(axis=0)
    volume = float(np.prod(spans[spans > 0])) or 1.0
    density = n / volume
    # ball volume v ~ c_d * eps^d; solve c_d * eps^d * density = 2k with
    # the unit-cube approximation c_d = 1 (constant factors wash out in
    # the doubling loop)
    eff_d = int((spans > 0).sum()) or 1
    return float((2.0 * k / density) ** (1.0 / eff_d))


@register_op
class KnnJoinOp(JoinOp):
    """Exact kNN via adaptive ε-expansion: a multi-round driver op.

    The compiled plan carries an
    :class:`~repro.runtime.plan.ExpansionStage` instead of an estimate —
    the runner's driver loop compiles one residual *bipartite* sub-plan
    per round (still-pending queries against the full dataset at the
    round's radius), so every round inherits the runtime's engine,
    sharding, recovery, fault and checkpoint configuration unchanged.
    ``shardable`` is ``False``: the driver plan itself carries no
    :class:`~repro.runtime.plan.ShardStage`; pooled runtimes shard each
    round's sub-plan.

    ``index_factory`` (optional, ``epsilon -> GridIndex`` over
    ``points``) lets a caller with an index cache — the serving layer's
    session cache — supply each round's grid; by default the op builds
    one per radius.
    """

    kind = "knn"
    kernel_name = "bipartite_kernel"
    kernel = staticmethod(bipartite_kernel)
    shardable = False

    def __init__(
        self,
        points,
        k: int,
        *,
        epsilon0: float | None = None,
        growth: float = 2.0,
        max_rounds: int = _KNN_MAX_ROUNDS,
        index_factory=None,
    ):
        self.points = as_points_array(points)
        n = self.points.shape[0]
        if k < 1:
            raise ValueError("k must be >= 1")
        if k >= n:
            raise ValueError(
                f"k={k} requires at least k+1={k + 1} points, got {n}"
            )
        eps = (
            float(epsilon0)
            if epsilon0 is not None
            else default_knn_epsilon(self.points, k)
        )
        if not (eps > 0) or not np.isfinite(eps):
            raise ValueError("epsilon0 must be positive")
        if not (growth > 1.0):
            raise ValueError("growth must be > 1")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.k = int(k)
        self.epsilon0 = eps
        self.growth = float(growth)
        self.max_rounds = int(max_rounds)
        self.index_factory = index_factory

    def describe(self, cfg: OptimizationConfig) -> str:
        return f"knn[k={self.k}] {cfg.describe()}"

    def result_epsilon(self, index: GridIndex) -> float:
        return self.epsilon0

    def total_points(self, index: GridIndex) -> int:
        return len(self.points)

    def validate(self, runtime) -> None:
        if runtime.optimization.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "kNN join's bipartite rounds require pattern='full'"
            )

    def plan_stages(self, index: GridIndex, runtime) -> list:
        from repro.runtime.plan import ExpansionStage

        return [
            ExpansionStage(
                k=self.k,
                epsilon0=self.epsilon0,
                growth=self.growth,
                max_rounds=self.max_rounds,
            )
        ]

    def fingerprint_extras(self) -> tuple[bytes, ...]:
        # k + (epsilon0, growth, max_rounds) pin the whole ε-schedule:
        # round r always runs at epsilon0 * growth**r
        return (
            f"knn:k={self.k}:eps0={self.epsilon0!r}:"
            f"growth={self.growth!r}:rounds={self.max_rounds}".encode(),
        )

    def build_index(self, epsilon: float) -> GridIndex:
        """The grid one round queries against (via ``index_factory`` when
        the caller caches indexes per radius)."""
        if self.index_factory is not None:
            return self.index_factory(float(epsilon))
        return GridIndex(self.points, float(epsilon))

"""Join operation strategies: the op-specific half of a shard execution.

A :class:`~repro.runtime.plan.JoinPlan` is op-agnostic — estimate, shard,
launch, merge — but three decisions differ between the self-join and the
bipartite join: how the query order D' is derived (and restricted to a
shard's subset), how the result size is estimated, and which kernel with
which argument pack runs each batch. Each op bundles exactly those three,
so the :class:`~repro.runtime.runner.Runner` executes either join through
one code path.

The bodies here are the former private planning code of
:class:`~repro.core.selfjoin.SelfJoin` and
:class:`~repro.core.join.SimilarityJoin`, moved — not rewritten — so the
refactor preserves every result bit-for-bit (the golden equivalence suite
in ``tests/runtime`` holds it to that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import estimate_result_size_detailed
from repro.core.bipartite_kernels import BipartiteKernelArgs, bipartite_kernel
from repro.core.config import OptimizationConfig
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.core.sortbywl import point_workloads, sort_by_workload
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_neighbor_counts, bipartite_workloads
from repro.simt import AtomicCounter
from repro.util import as_points_array, stable_argsort_desc

__all__ = ["BipartiteOp", "SelfJoinOp", "ShardPrep"]


@dataclass(frozen=True)
class ShardPrep:
    """Everything the launch stage needs about one shard's queries.

    ``order`` is the (possibly workload-sorted) query id sequence D';
    ``estimate`` the planned result size; ``weights`` the per-query
    workload estimates when balanced batching is on, else ``None``.
    """

    order: np.ndarray
    estimate: int
    weights: np.ndarray | None


class SelfJoinOp:
    """The self-join's op: symmetric patterns, in-index queries."""

    kind = "self"
    kernel = staticmethod(selfjoin_kernel)

    def __init__(self, *, include_self: bool = True):
        self.include_self = include_self

    def describe(self, cfg: OptimizationConfig) -> str:
        return cfg.describe()

    def result_epsilon(self, index: GridIndex) -> float:
        return index.epsilon

    def total_points(self, index: GridIndex) -> int:
        """Query-side cardinality of the unsharded join."""
        return index.num_points

    def prepare(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        *,
        subset: np.ndarray | None,
        safety_z: float,
    ) -> ShardPrep:
        """Derive D', the result-size estimate and batch weights.

        ``subset`` restricts the *query* side to the given point ids — the
        candidate side always sees the whole index, so the result is
        exactly the full join's rows whose query point lies in the subset.
        """
        if cfg.uses_sorted_points:
            order = sort_by_workload(index, cfg.pattern)
            if subset is not None:
                keep = np.zeros(index.num_points, dtype=bool)
                keep[np.asarray(subset, dtype=np.int64)] = True
                order = order[keep[order]]  # D' restricted, rank order kept
        elif subset is not None:
            order = np.asarray(subset, dtype=np.int64)
        else:
            order = np.arange(index.num_points, dtype=np.int64)

        detailed = estimate_result_size_detailed(
            index,
            sample_fraction=cfg.sample_fraction,
            mode="head" if cfg.work_queue else "strided",
            order=order if cfg.work_queue else None,
            include_self=self.include_self,
            subset=subset,
        )
        est = detailed.with_margin(safety_z) if safety_z > 0 else detailed.estimate

        weights = (
            point_workloads(index, cfg.pattern)[order].astype(float)
            if cfg.balanced_batches
            else None
        )
        return ShardPrep(order=order, estimate=est, weights=weights)

    def make_args(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        order: np.ndarray,
        counter: AtomicCounter | None,
    ):
        def factory(batch: np.ndarray) -> KernelArgs:
            return KernelArgs(
                index=index,
                batch=batch,
                k=cfg.k,
                pattern=cfg.pattern,
                include_self=self.include_self,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        return factory


class BipartiteOp:
    """The bipartite join's op: external queries, full pattern only."""

    kind = "bipartite"
    kernel = staticmethod(bipartite_kernel)

    def __init__(self, queries):
        self.queries = as_points_array(queries)

    def describe(self, cfg: OptimizationConfig) -> str:
        return f"bipartite {cfg.describe()}"

    def result_epsilon(self, index: GridIndex) -> float:
        return float(index.epsilon)

    def total_points(self, index: GridIndex) -> int:
        return len(self.queries)

    def prepare(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        *,
        subset: np.ndarray | None,
        safety_z: float,
    ) -> ShardPrep:
        """Derive the shard's query order, estimate and batch weights.

        The bipartite estimator has no sampling-error model, so
        ``safety_z`` does not apply here (an overflow re-plans instead).
        Workloads are quantified once and reused for both the SORTBYWL
        order and the balanced-batch weights.
        """
        queries = self.queries
        ids = (
            np.asarray(subset, dtype=np.int64)
            if subset is not None
            else np.arange(len(queries), dtype=np.int64)
        )

        workloads, _ = bipartite_workloads(index, queries[ids])
        if cfg.uses_sorted_points:
            order = ids[stable_argsort_desc(workloads)]
        else:
            order = ids

        est = self._estimate(index, cfg, ids, order)
        weights = None
        if cfg.balanced_batches:
            by_id = np.zeros(len(queries), dtype=np.float64)
            by_id[ids] = workloads
            weights = by_id[order]
        return ShardPrep(order=order, estimate=est, weights=weights)

    def _estimate(self, index, cfg, ids, order) -> int:
        nq = len(ids)
        if nq == 0 or index.num_points == 0:
            return 0
        sample_size = min(nq, max(1, int(round(nq * cfg.sample_fraction))))
        if cfg.work_queue:
            sample = order[:sample_size]  # heaviest queries: overestimates
        else:
            step = max(1, nq // sample_size)
            sample = ids[::step]
        if len(sample) == 0:
            return 0
        counts = bipartite_neighbor_counts(index, self.queries[sample])
        return int(np.ceil(counts.sum() * (nq / len(sample))))

    def make_args(
        self,
        index: GridIndex,
        cfg: OptimizationConfig,
        order: np.ndarray,
        counter: AtomicCounter | None,
    ):
        def factory(batch: np.ndarray) -> BipartiteKernelArgs:
            return BipartiteKernelArgs(
                index=index,
                queries=self.queries,
                batch=batch,
                k=cfg.k,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        return factory

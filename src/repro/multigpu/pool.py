"""A pool of independent simulated devices, each with a health record.

Each :class:`PoolDevice` owns its own
:class:`~repro.core.executor.DeviceExecutor` — and through it a private
:class:`~repro.simt.GpuMachine`, per-batch result buffers, per-shard
WORKQUEUE atomic counters and a private 3-stream transfer pipeline over
its own PCIe link. Nothing is shared device-to-device except the
host-side grid index and the host scheduler's shard queue, matching the
multi-GPU partitioning setup Gowanlock & Karsin name as the scaling path.

Pools are homogeneous by default (N copies of one
:class:`~repro.simt.DeviceSpec`) but accept an explicit heterogeneous
``specs`` list — the scheduler's dynamic mode then load-balances across
unequal devices for free.

Every device carries a mutable :class:`DeviceHealth`: whether it is
alive, when it failed (in simulated seconds), and how many shard
dispatches it has started. The resilient scheduler marks devices dead on
:class:`~repro.resilience.faults.DeviceLostError` and consults health
when picking dispatch targets; fault injection reads the dispatch count
to decide when a planned failure fires. ``reset_health()`` re-arms the
pool between runs so a reused pool stays seed-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import DeviceExecutor
from repro.simt import CostParams, DeviceSpec

__all__ = ["DeviceHealth", "DevicePool", "PoolDevice"]


@dataclass
class DeviceHealth:
    """Mutable health record of one pool device across a run."""

    alive: bool = True
    failed_at_seconds: float | None = None
    shards_started: int = 0

    def fail(self, at_seconds: float) -> None:
        """Mark the device permanently dead at the given simulated time."""
        if self.alive:
            self.alive = False
            self.failed_at_seconds = float(at_seconds)

    def reset(self) -> None:
        """Re-arm for a fresh run."""
        self.alive = True
        self.failed_at_seconds = None
        self.shards_started = 0


@dataclass(frozen=True)
class PoolDevice:
    """One device of the pool: its spec, its private executor, its health.

    ``executor`` is ``None`` on native-engine pools: the fidelity-free
    array engine has no simulated machine to own, so a native device is
    a scheduling slot (health + dispatch accounting) rather than a VM.
    """

    device_id: int
    spec: DeviceSpec
    executor: DeviceExecutor | None
    health: DeviceHealth = field(default_factory=DeviceHealth)


class DevicePool:
    """N independent simulated devices behind one host.

    Parameters
    ----------
    num_devices:
        Pool size (ignored when ``specs`` is given).
    spec:
        Device spec cloned for every pool member; defaults to the paper's
        testbed class.
    specs:
        Explicit per-device specs for a heterogeneous pool.
    costs:
        Instruction cost model, shared by all devices (one architecture).
    seed:
        Base seed; device ``d`` runs with ``seed + d`` so the pool's
        issue-order shuffles are independent yet reproducible.
    replay_mode:
        Warp replay fidelity forwarded to every executor.
    engine:
        Kernel execution engine forwarded to every executor
        (``"interpreted"`` or ``"vectorized"``), or ``"native"`` — the
        array engine builds no executors at all (``PoolDevice.executor``
        is ``None``; shards run as NumPy passes, see
        :mod:`repro.runtime.native`).
    overflow_policy:
        Forwarded to every executor: ``"raise"`` (default — overflow
        propagates and the join re-plans) or ``"retry"`` (batch-level
        recovery with a geometrically grown buffer; see
        :class:`~repro.core.executor.DeviceExecutor`).
    workers:
        Shard dispatch backend: ``"inline"`` (default) or ``"process"``
        (native engine only — each device becomes a real worker process;
        see :mod:`repro.runtime.native`). Recorded for the runner; the
        pool itself stays a passive device list either way.
    """

    def __init__(
        self,
        num_devices: int = 2,
        *,
        spec: DeviceSpec | None = None,
        specs: list[DeviceSpec] | None = None,
        costs: CostParams | None = None,
        seed: int = 0,
        replay_mode: str = "aggregate",
        engine: str = "interpreted",
        overflow_policy: str = "raise",
        workers: str = "inline",
    ):
        if specs is None:
            if num_devices < 1:
                raise ValueError("num_devices must be >= 1")
            base = spec if spec is not None else DeviceSpec()
            specs = [base] * num_devices
        elif not specs:
            raise ValueError("specs must name at least one device")
        if workers not in ("inline", "process"):
            raise ValueError(f"unknown worker backend {workers!r}")
        if workers == "process" and engine != "native":
            raise ValueError("workers='process' requires engine='native'")
        costs = costs if costs is not None else CostParams()
        self.workers = workers
        self.devices: list[PoolDevice] = [
            PoolDevice(
                device_id=d,
                spec=s,
                executor=None
                if engine == "native"
                else DeviceExecutor(
                    s,
                    costs,
                    seed=seed + d,
                    replay_mode=replay_mode,
                    engine=engine,
                    overflow_policy=overflow_policy,
                ),
            )
            for d, s in enumerate(specs)
        ]

    @classmethod
    def from_runtime(
        cls,
        runtime,
        *,
        specs: list[DeviceSpec] | None = None,
    ) -> "DevicePool":
        """Build the pool a :class:`~repro.runtime.config.RuntimeConfig`
        describes: ``sharding.num_devices`` copies of its device spec,
        executors carrying its engine, replay mode, seed ladder and
        resolved overflow policy. ``specs`` overrides the homogeneous
        layout for heterogeneous pools.
        """
        if runtime.sharding is None:
            raise ValueError("runtime has no sharding config; nothing to pool")
        if specs is None:
            base = runtime.device if runtime.device is not None else DeviceSpec()
            specs = [base] * runtime.sharding.num_devices
        elif not specs:
            raise ValueError("specs must name at least one device")
        costs = runtime.costs if runtime.costs is not None else CostParams()
        pool = cls.__new__(cls)
        pool.workers = runtime.sharding.workers
        pool.devices = [
            PoolDevice(
                device_id=d,
                spec=s,
                executor=None
                if runtime.engine == "native"
                else DeviceExecutor(
                    s,
                    costs,
                    seed=runtime.seed + d,
                    replay_mode=runtime.replay_mode,
                    engine=runtime.engine,
                    overflow_policy=runtime.overflow_policy,
                    overflow_growth=runtime.overflow.growth,
                    max_overflow_retries=runtime.overflow.max_retries,
                    overflow_backoff_seconds=runtime.overflow.backoff_seconds,
                ),
            )
            for d, s in enumerate(specs)
        ]
        return pool

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def total_warp_slots(self) -> int:
        """Aggregate scheduler width — the pool's peak warp concurrency."""
        return sum(d.spec.warp_slots for d in self.devices)

    def alive_device_ids(self) -> list[int]:
        """Ids of devices whose health says they can still take work."""
        return [d.device_id for d in self.devices if d.health.alive]

    def reset_health(self) -> None:
        """Re-arm every device's health record for a fresh run."""
        for d in self.devices:
            d.health.reset()

    def __len__(self) -> int:
        return self.num_devices

    def __iter__(self):
        return iter(self.devices)

    def __getitem__(self, device_id: int) -> PoolDevice:
        return self.devices[device_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {d.spec.name for d in self.devices}
        dead = self.num_devices - len(self.alive_device_ids())
        suffix = f", dead={dead}" if dead else ""
        return f"DevicePool(n={self.num_devices}, specs={sorted(names)}{suffix})"

"""Multi-device sharded similarity joins with device-level load balancing.

The paper mitigates load imbalance *within* one GPU — SORTBYWL packs
warps with similar workloads, the WORKQUEUE forces most-work-first warp
execution. This package applies the same two ideas one level up, across a
pool of simulated devices:

- :class:`DevicePool` — N independent
  :class:`~repro.simt.GpuMachine`-backed executors, each with private
  buffers, counters and transfer pipeline;
- :mod:`~repro.multigpu.sharding` — point-strided, contiguous-cell-block
  and workload-balanced (greedy LPT over the SORTBYWL per-point workload
  estimates) shard planners;
- :class:`HostScheduler` — static pre-assignment vs a shared
  most-work-first device queue (the WORKQUEUE generalized from warp-slot
  fetch to device-shard fetch);
- :mod:`~repro.multigpu.merge` — deterministic, execution-order-independent
  merging back into a normal :class:`~repro.core.result.JoinResult`;
- :class:`PoolStats` — per-device busy time, makespan, and **device
  execution efficiency**, the pool analogue of the paper's warp execution
  efficiency.

Passing a :class:`~repro.resilience.policy.RecoveryPolicy` (or a
:class:`~repro.resilience.faults.FaultPlan`, which implies one) switches
the scheduler into its self-healing loop: shard requeue off dead devices,
bounded transient retries, straggler speculation — with merged pairs
identical to the fault-free run (see :mod:`repro.resilience`).

Quickstart::

    from repro.multigpu import MultiGpuSelfJoin

    join = MultiGpuSelfJoin(num_devices=4, planner="balanced")
    result = join.execute(points, epsilon=0.5)
    print(result.num_pairs, result.total_seconds,
          result.device_execution_efficiency)
"""

from repro.multigpu.join import (
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
    MultiJoinResult,
)
from repro.multigpu.merge import merge_pairs, merge_shard_results, pipeline_from_trace
from repro.multigpu.metrics import DeviceStats, PoolStats, pool_stats_from_trace
from repro.multigpu.pool import DeviceHealth, DevicePool, PoolDevice
from repro.multigpu.scheduler import (
    EVENT_KINDS,
    SCHEDULE_MODES,
    FailureRecord,
    HostScheduler,
    RecoveryLog,
    RequeueRecord,
    ScheduleTrace,
    ShardEvent,
    SpeculationRecord,
    TransientRecord,
)
from repro.multigpu.sharding import (
    SHARD_PLANNERS,
    Shard,
    ShardPlan,
    plan_query_shards,
    plan_shards,
)

__all__ = [
    "DeviceHealth",
    "DevicePool",
    "DeviceStats",
    "EVENT_KINDS",
    "FailureRecord",
    "HostScheduler",
    "MultiGpuSelfJoin",
    "MultiGpuSimilarityJoin",
    "MultiJoinResult",
    "PoolDevice",
    "PoolStats",
    "RecoveryLog",
    "RequeueRecord",
    "SCHEDULE_MODES",
    "SHARD_PLANNERS",
    "ScheduleTrace",
    "Shard",
    "ShardEvent",
    "ShardPlan",
    "SpeculationRecord",
    "TransientRecord",
    "merge_pairs",
    "merge_shard_results",
    "pipeline_from_trace",
    "plan_query_shards",
    "plan_shards",
    "pool_stats_from_trace",
]

"""Shard planners: how one join's query points split across devices.

The paper quantifies per-point workloads to balance warps *within* one
GPU (SORTBYWL, Section III-C); here the identical signal balances work
*across* devices. Three planners, mirroring the intra-GPU design space:

- ``"strided"`` — shard ``s`` takes query ids ``s::num_shards``, the
  device-level analogue of the batching scheme's round-robin (Figure 1).
  Statistically even, but blind to workload: heavy points land wherever
  their ids happen to fall.
- ``"cell_blocks"`` — contiguous runs of grid cells with roughly equal
  point counts. Preserves spatial locality (each device touches a compact
  region of the index) at the cost of workload skew: a dense region's
  cells travel together.
- ``"balanced"`` — greedy LPT bin-packing over the SORTBYWL per-point
  workload estimates: points are taken in non-increasing estimated-work
  order (D' itself) and each is assigned to the currently lightest shard.
  The classic longest-processing-time guarantee carries over: shard totals
  stay within a small factor of optimal even under adversarial skew.

Every planner *partitions* the query ids — each query lives in exactly
one shard — so merged results need no dedup for the ``"full"`` pattern;
cell-granular shards under the mirrored half-patterns are flagged
(``may_duplicate``) so the merge can defensively dedup.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.sortbywl import point_workloads
from repro.grid import GridIndex
from repro.util import gather_slices, stable_argsort_desc

__all__ = [
    "SHARD_PLANNERS",
    "Shard",
    "ShardPlan",
    "plan_query_shards",
    "plan_shards",
]

SHARD_PLANNERS = ("strided", "cell_blocks", "balanced")


@dataclass(frozen=True)
class Shard:
    """One device-sized slice of a join's query points."""

    shard_id: int
    points: np.ndarray  # query point ids served by this shard
    estimated_work: float  # summed per-point workload estimate

    @property
    def num_points(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the query ids into shards, plus dispatch metadata."""

    shards: list[Shard]
    planner: str
    num_queries: int
    may_duplicate: bool = False

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_work(self) -> float:
        return float(sum(s.estimated_work for s in self.shards))

    @property
    def estimated_imbalance(self) -> float:
        """Max/mean estimated shard work — 1.0 is a perfectly level plan."""
        works = [s.estimated_work for s in self.shards]
        if not works:
            return 1.0
        mean = float(np.mean(works))
        if mean == 0:
            return 1.0
        return float(max(works) / mean)

    def dispatch_order(self) -> list[int]:
        """Shard ids in most-work-first order (stable on ties) — the
        device-level generalization of the WORKQUEUE's sorted array D'."""
        works = np.array([s.estimated_work for s in self.shards])
        return [int(i) for i in stable_argsort_desc(works)]


def _build(shard_members, weights, planner, num_queries, *, may_duplicate=False):
    shards = [
        Shard(
            shard_id=s,
            points=np.asarray(members, dtype=np.int64),
            estimated_work=float(weights[members].sum()) if len(members) else 0.0,
        )
        for s, members in enumerate(shard_members)
    ]
    return ShardPlan(
        shards=shards,
        planner=planner,
        num_queries=num_queries,
        may_duplicate=may_duplicate,
    )


def _lpt_partition(ids: np.ndarray, weights: np.ndarray, num_shards: int):
    """Greedy LPT: heaviest id first, into the currently lightest bin.

    Deterministic: ties on bin load break toward the lowest shard id
    (heap keyed on ``(load, shard_id)``), ids of equal weight keep their
    relative order (stable sort).
    """
    order = ids[stable_argsort_desc(weights[ids])]
    heap = [(0.0, s) for s in range(num_shards)]
    heapq.heapify(heap)
    members: list[list[int]] = [[] for _ in range(num_shards)]
    for q in order:
        load, s = heapq.heappop(heap)
        members[s].append(int(q))
        heapq.heappush(heap, (load + float(weights[q]), s))
    return members


def plan_query_shards(
    weights: np.ndarray,
    num_shards: int,
    planner: str = "balanced",
    *,
    may_duplicate: bool = False,
) -> ShardPlan:
    """Partition query ids ``0..len(weights)-1`` into ``num_shards`` shards.

    ``weights`` is the per-query workload estimate (any non-negative
    signal; the self-join uses SORTBYWL's quantified candidate counts, the
    bipartite join its query workloads). ``"cell_blocks"`` degrades to
    contiguous equal-count id blocks — the caller partitions by cell runs
    itself when it has a grid (see :func:`plan_shards`).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    nq = len(weights)
    ids = np.arange(nq, dtype=np.int64)

    if planner == "strided":
        members = [ids[s::num_shards] for s in range(num_shards)]
    elif planner == "cell_blocks":
        bounds = np.linspace(0, nq, num_shards + 1).round().astype(np.int64)
        members = [ids[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    elif planner == "balanced":
        members = _lpt_partition(ids, weights, num_shards)
    else:
        raise ValueError(
            f"unknown planner {planner!r}; expected one of {SHARD_PLANNERS}"
        )
    return _build(members, weights, planner, nq, may_duplicate=may_duplicate)


def plan_shards(
    index: GridIndex,
    num_shards: int,
    planner: str = "balanced",
    *,
    pattern: str = "full",
) -> ShardPlan:
    """Partition a self-join's query points into ``num_shards`` shards.

    The workload signal is :func:`~repro.core.sortbywl.point_workloads`
    under the configured access pattern — the same quantification SORTBYWL
    sorts by, reused one level up. Empty shards are legal (more shards
    than points): they carry zero work and produce zero rows.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = index.num_points
    weights = (
        point_workloads(index, pattern).astype(np.float64)
        if n
        else np.zeros(0, dtype=np.float64)
    )
    ids = np.arange(n, dtype=np.int64)

    if planner == "strided":
        members = [ids[s::num_shards] for s in range(num_shards)]
    elif planner == "cell_blocks":
        members = _cell_block_partition(index, num_shards)
    elif planner == "balanced":
        members = _lpt_partition(ids, weights, num_shards)
    else:
        raise ValueError(
            f"unknown planner {planner!r}; expected one of {SHARD_PLANNERS}"
        )
    # cell-granular shards under a mirrored half-pattern: flag for the
    # merge's defensive dedup (emission is still single-coverage, but the
    # invariant is cheap to enforce and the plan records the risk).
    may_duplicate = planner == "cell_blocks" and pattern != "full"
    return _build(members, weights, planner, n, may_duplicate=may_duplicate)


def _cell_block_partition(index: GridIndex, num_shards: int) -> list[np.ndarray]:
    """Contiguous cell runs of roughly equal point counts."""
    counts = index.cell_counts
    if len(counts) == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(num_shards)]
    cum = np.cumsum(counts)
    total = int(cum[-1])
    # cell run boundaries at the count quantiles
    targets = np.linspace(0, total, num_shards + 1)[1:-1]
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate([[0], cuts, [len(counts)]])
    bounds = np.maximum.accumulate(bounds)  # degenerate runs stay empty
    members = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            members.append(
                gather_slices(
                    index.point_order, index.cell_starts[a:b], index.cell_counts[a:b]
                )
            )
        else:
            members.append(np.empty(0, dtype=np.int64))
    return members

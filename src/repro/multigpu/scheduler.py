"""The host scheduler: static shard assignment vs a shared dynamic queue.

This is the WORKQUEUE optimization (Section III-D) lifted one level: where
the paper's queue is an atomic counter over the workload-sorted point
array D' that warps fetch from, the host queue is an atomic counter over
the workload-sorted *shard* list that *devices* fetch from. The two modes
form the same ablation the paper runs for warps:

- ``"static"`` — shard ``i`` is pre-assigned to device ``i % N`` (the
  multi-GPU analogue of the static thread→point mapping of Figure 1);
  each device processes its list in shard order.
- ``"dynamic"`` — all shards sit in one shared most-work-first queue
  (:meth:`ShardPlan.dispatch_order`); whenever a device finishes it
  fetches the next shard via a host-side
  :class:`~repro.simt.AtomicCounter`. Fast (or lucky) devices steal work
  that a static split would have stranded on a slow one.

Execution is simulated but *real*: fetching a shard runs its kernels on
that device's machine, and the fetch order is decided by the simulated
completion times — so the trace is exactly what a host event loop over N
real devices would record. Everything is deterministic: ties on device
free-time break toward the lowest device id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multigpu.pool import DevicePool
from repro.multigpu.sharding import ShardPlan
from repro.simt import AtomicCounter

__all__ = ["SCHEDULE_MODES", "HostScheduler", "ScheduleTrace", "ShardEvent"]

SCHEDULE_MODES = ("static", "dynamic")


@dataclass(frozen=True)
class ShardEvent:
    """One shard's execution on one device, in simulated host time."""

    shard_id: int
    device_id: int
    start_seconds: float
    end_seconds: float
    num_pairs: int
    num_points: int

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds


@dataclass(frozen=True)
class ScheduleTrace:
    """Dispatch-ordered record of a pool run — the device-level profiler."""

    events: list[ShardEvent]
    mode: str
    num_devices: int

    @property
    def makespan_seconds(self) -> float:
        """Host-observed response time: when the last device went idle."""
        return max((e.end_seconds for e in self.events), default=0.0)

    def device_busy_seconds(self) -> np.ndarray:
        """Per-device busy time, ``(num_devices,)``."""
        busy = np.zeros(self.num_devices, dtype=np.float64)
        for e in self.events:
            busy[e.device_id] += e.duration_seconds
        return busy

    def signature(self) -> tuple:
        """Hashable exact description — determinism tests compare these."""
        return tuple(
            (e.shard_id, e.device_id, e.start_seconds, e.end_seconds, e.num_pairs)
            for e in self.events
        )


class HostScheduler:
    """Drives a :class:`~repro.multigpu.pool.DevicePool` through a
    :class:`~repro.multigpu.sharding.ShardPlan`."""

    def __init__(self, pool: DevicePool, mode: str = "dynamic"):
        if mode not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {mode!r}; expected one of {SCHEDULE_MODES}"
            )
        self.pool = pool
        self.mode = mode

    def run(self, plan: ShardPlan, run_shard) -> tuple[list, ScheduleTrace]:
        """Execute every shard; return per-shard results and the trace.

        ``run_shard(device, shard)`` must run the shard's join on the given
        :class:`~repro.multigpu.pool.PoolDevice` and return an object with
        ``total_seconds`` and ``num_pairs`` (a ``JoinResult``). Results are
        returned indexed by ``shard_id`` regardless of execution order.
        """
        if self.mode == "static":
            return self._run_static(plan, run_shard)
        return self._run_dynamic(plan, run_shard)

    # ------------------------------------------------------------------
    def _run_static(self, plan: ShardPlan, run_shard):
        n = self.pool.num_devices
        clocks = np.zeros(n, dtype=np.float64)
        results: list = [None] * plan.num_shards
        events: list[ShardEvent] = []
        for shard in plan.shards:
            d = shard.shard_id % n
            device = self.pool[d]
            result = run_shard(device, shard)
            results[shard.shard_id] = result
            start = float(clocks[d])
            clocks[d] = start + float(result.total_seconds)
            events.append(
                ShardEvent(
                    shard_id=shard.shard_id,
                    device_id=d,
                    start_seconds=start,
                    end_seconds=float(clocks[d]),
                    num_pairs=int(result.num_pairs),
                    num_points=shard.num_points,
                )
            )
        return results, ScheduleTrace(events, self.mode, n)

    def _run_dynamic(self, plan: ShardPlan, run_shard):
        n = self.pool.num_devices
        clocks = np.zeros(n, dtype=np.float64)
        queue = plan.dispatch_order()  # most-work-first, the lifted D'
        head = AtomicCounter(name="device-queue")
        results: list = [None] * plan.num_shards
        events: list[ShardEvent] = []
        while head.value < len(queue):
            # the earliest-free device fetches next; ties to the lowest id
            d = int(np.argmin(clocks))
            shard = plan.shards[queue[head.fetch_add()]]
            device = self.pool[d]
            result = run_shard(device, shard)
            results[shard.shard_id] = result
            start = float(clocks[d])
            clocks[d] = start + float(result.total_seconds)
            events.append(
                ShardEvent(
                    shard_id=shard.shard_id,
                    device_id=d,
                    start_seconds=start,
                    end_seconds=float(clocks[d]),
                    num_pairs=int(result.num_pairs),
                    num_points=shard.num_points,
                )
            )
        return results, ScheduleTrace(events, self.mode, n)

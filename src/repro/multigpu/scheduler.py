"""The host scheduler: static shard assignment vs a shared dynamic queue,
with an optional self-healing run loop.

This is the WORKQUEUE optimization (Section III-D) lifted one level: where
the paper's queue is an atomic counter over the workload-sorted point
array D' that warps fetch from, the host queue is an atomic counter over
the workload-sorted *shard* list that *devices* fetch from. The two modes
form the same ablation the paper runs for warps:

- ``"static"`` — shard ``i`` is pre-assigned to device ``i % N`` (the
  multi-GPU analogue of the static thread→point mapping of Figure 1);
  each device processes its list in shard order.
- ``"dynamic"`` — all shards sit in one shared most-work-first queue
  (:meth:`ShardPlan.dispatch_order`); whenever a device finishes it
  fetches the next shard via a host-side
  :class:`~repro.simt.AtomicCounter`. Fast (or lucky) devices steal work
  that a static split would have stranded on a slow one.

Execution is simulated but *real*: fetching a shard runs its kernels on
that device's machine, and the fetch order is decided by the simulated
completion times — so the trace is exactly what a host event loop over N
real devices would record. Everything is deterministic: ties on device
free-time break toward the lowest device id.

Passing a :class:`~repro.resilience.policy.RecoveryPolicy` switches the
scheduler into its **resilient** run loop, which additionally survives
injected (or genuine) device faults:

- :class:`~repro.resilience.faults.DeviceLostError` marks the device dead
  in its :class:`~repro.multigpu.pool.DeviceHealth` and requeues the lost
  shard onto a surviving device — degrading gracefully down to one device
  and raising :class:`~repro.resilience.faults.AllDevicesLostError` only
  when none remain;
- :class:`~repro.resilience.faults.TransientKernelError` retries on the
  same device (bounded, with simulated backoff), then requeues elsewhere;
- in dynamic mode, once the queue drains, the latest-finishing shard is
  checked against the straggler criterion (duration above
  ``straggler_threshold ×`` the median) and speculatively re-executed on
  an idle device: the first result wins, the loser is cancelled at the
  winner's finish time, and the loser's spend is recorded as waste.

Every recovery action appears in the trace as a typed
:class:`ShardEvent` (``kind`` ∈ run/transient/lost/preempted/speculative/
cancelled) and in the :class:`RecoveryLog`, so the merged result stays an
execution-order-independent function of the shard set and the trace
remains a deterministic, signature-comparable record per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.multigpu.pool import DevicePool
from repro.multigpu.sharding import ShardPlan
from repro.resilience.faults import (
    AllDevicesLostError,
    DeviceLostError,
    TransientKernelError,
)
from repro.resilience.policy import RecoveryPolicy
from repro.simt import AtomicCounter

__all__ = [
    "EVENT_KINDS",
    "SCHEDULE_MODES",
    "FailureRecord",
    "HostScheduler",
    "RecoveryLog",
    "RequeueRecord",
    "ScheduleTrace",
    "ShardEvent",
    "SpeculationRecord",
    "TransientRecord",
]

SCHEDULE_MODES = ("static", "dynamic")

#: What one trace event can record. ``run`` finished normally;
#: ``transient`` wasted an attempt; ``lost`` is a shard dying with its
#: device; ``preempted`` is a straggler primary killed by a winning
#: speculative copy; ``speculative`` is that winning copy; ``cancelled``
#: is a losing copy killed at the primary's finish.
EVENT_KINDS = ("run", "transient", "lost", "preempted", "speculative", "cancelled")

#: Event kinds whose result actually contributed pairs/kernel time.
PRODUCTIVE_KINDS = ("run", "speculative")


@dataclass(frozen=True)
class ShardEvent:
    """One shard attempt on one device, in simulated host time."""

    shard_id: int
    device_id: int
    start_seconds: float
    end_seconds: float
    num_pairs: int
    num_points: int
    kind: str = "run"
    attempt: int = 0

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds


@dataclass(frozen=True)
class FailureRecord:
    """A device dying, and the shard it took down with it."""

    device_id: int
    at_seconds: float
    shard_id: int


@dataclass(frozen=True)
class TransientRecord:
    """One transiently failed attempt (wasted time includes backoff)."""

    shard_id: int
    device_id: int
    attempt: int
    wasted_seconds: float


@dataclass(frozen=True)
class RequeueRecord:
    """A shard moved to a different device after its first one gave up."""

    shard_id: int
    from_device: int
    to_device: int
    reason: str  # "device_lost" | "transient_exhausted"


@dataclass(frozen=True)
class SpeculationRecord:
    """A speculative re-execution and which copy won."""

    shard_id: int
    primary_device: int
    backup_device: int
    won: bool
    wasted_seconds: float


@dataclass
class RecoveryLog:
    """Everything the resilient scheduler did beyond plain execution."""

    device_failures: list[FailureRecord] = field(default_factory=list)
    transients: list[TransientRecord] = field(default_factory=list)
    requeues: list[RequeueRecord] = field(default_factory=list)
    speculations: list[SpeculationRecord] = field(default_factory=list)

    @property
    def num_devices_lost(self) -> int:
        return len(self.device_failures)

    @property
    def num_transient_retries(self) -> int:
        return len(self.transients)

    @property
    def num_requeues(self) -> int:
        return len(self.requeues)

    @property
    def num_speculations(self) -> int:
        return len(self.speculations)

    @property
    def num_speculative_wins(self) -> int:
        return sum(1 for s in self.speculations if s.won)

    @property
    def wasted_seconds(self) -> float:
        """Device-seconds burned on work that produced no result rows."""
        return float(
            sum(t.wasted_seconds for t in self.transients)
            + sum(s.wasted_seconds for s in self.speculations)
        )


@dataclass(frozen=True)
class ScheduleTrace:
    """Dispatch-ordered record of a pool run — the device-level profiler."""

    events: list[ShardEvent]
    mode: str
    num_devices: int
    recovery: RecoveryLog | None = None

    @property
    def makespan_seconds(self) -> float:
        """Host-observed response time: when the last device went idle."""
        return max((e.end_seconds for e in self.events), default=0.0)

    def device_busy_seconds(self) -> np.ndarray:
        """Per-device busy time, ``(num_devices,)``."""
        busy = np.zeros(self.num_devices, dtype=np.float64)
        for e in self.events:
            busy[e.device_id] += e.duration_seconds
        return busy

    def signature(self) -> tuple:
        """Hashable exact description — determinism tests compare these."""
        return tuple(
            (
                e.shard_id,
                e.device_id,
                e.start_seconds,
                e.end_seconds,
                e.num_pairs,
                e.kind,
                e.attempt,
            )
            for e in self.events
        )


class HostScheduler:
    """Drives a :class:`~repro.multigpu.pool.DevicePool` through a
    :class:`~repro.multigpu.sharding.ShardPlan`.

    ``recovery=None`` (the default) is the fail-fast PR-1 scheduler: any
    exception from ``run_shard`` propagates. Passing a
    :class:`~repro.resilience.policy.RecoveryPolicy` enables the resilient
    loop documented in the module docstring.
    """

    def __init__(
        self,
        pool: DevicePool,
        mode: str = "dynamic",
        *,
        recovery: RecoveryPolicy | None = None,
    ):
        if mode not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {mode!r}; expected one of {SCHEDULE_MODES}"
            )
        self.pool = pool
        self.mode = mode
        self.recovery = recovery

    def run(self, plan: ShardPlan, run_shard) -> tuple[list, ScheduleTrace]:
        """Execute every shard; return per-shard results and the trace.

        ``run_shard(device, shard)`` must run the shard's join on the given
        :class:`~repro.multigpu.pool.PoolDevice` and return an object with
        ``total_seconds`` and ``num_pairs`` (a ``JoinResult``). Results are
        returned indexed by ``shard_id`` regardless of execution order.
        """
        if self.recovery is not None:
            return self._run_resilient(plan, run_shard)
        if self.mode == "static":
            return self._run_static(plan, run_shard)
        return self._run_dynamic(plan, run_shard)

    # ------------------------------------------------------------------
    # fail-fast paths (PR-1 behaviour, unchanged)
    def _run_static(self, plan: ShardPlan, run_shard):
        n = self.pool.num_devices
        clocks = np.zeros(n, dtype=np.float64)
        results: list = [None] * plan.num_shards
        events: list[ShardEvent] = []
        for shard in plan.shards:
            d = shard.shard_id % n
            device = self.pool[d]
            result = run_shard(device, shard)
            results[shard.shard_id] = result
            start = float(clocks[d])
            clocks[d] = start + float(result.total_seconds)
            events.append(
                ShardEvent(
                    shard_id=shard.shard_id,
                    device_id=d,
                    start_seconds=start,
                    end_seconds=float(clocks[d]),
                    num_pairs=int(result.num_pairs),
                    num_points=shard.num_points,
                )
            )
        return results, ScheduleTrace(events, self.mode, n)

    def _run_dynamic(self, plan: ShardPlan, run_shard):
        n = self.pool.num_devices
        clocks = np.zeros(n, dtype=np.float64)
        queue = plan.dispatch_order()  # most-work-first, the lifted D'
        head = AtomicCounter(name="device-queue")
        results: list = [None] * plan.num_shards
        events: list[ShardEvent] = []
        while head.value < len(queue):
            # the earliest-free device fetches next; ties to the lowest id
            d = int(np.argmin(clocks))
            shard = plan.shards[queue[head.fetch_add()]]
            device = self.pool[d]
            result = run_shard(device, shard)
            results[shard.shard_id] = result
            start = float(clocks[d])
            clocks[d] = start + float(result.total_seconds)
            events.append(
                ShardEvent(
                    shard_id=shard.shard_id,
                    device_id=d,
                    start_seconds=start,
                    end_seconds=float(clocks[d]),
                    num_pairs=int(result.num_pairs),
                    num_points=shard.num_points,
                )
            )
        return results, ScheduleTrace(events, self.mode, n)

    # ------------------------------------------------------------------
    # resilient path
    def _run_resilient(self, plan: ShardPlan, run_shard):
        policy = self.recovery
        n = self.pool.num_devices
        self.pool.reset_health()
        clocks = np.zeros(n, dtype=np.float64)
        results: list = [None] * plan.num_shards
        events: list[ShardEvent] = []
        log = RecoveryLog()

        state = _LoopState(clocks, results, events, log)
        if self.mode == "static":
            shard_seq = [s.shard_id for s in plan.shards]
        else:
            shard_seq = plan.dispatch_order()

        for sid in shard_seq:
            d = self._initial_device(sid, state)
            self._execute_with_recovery(plan, run_shard, sid, d, policy, state)

        if policy.speculation and self.mode == "dynamic":
            self._speculate(plan, run_shard, policy, state)

        return results, ScheduleTrace(events, self.mode, n, recovery=log)

    # -- device selection ----------------------------------------------
    def _alive(self) -> list[int]:
        return self.pool.alive_device_ids()

    def _initial_device(self, sid: int, state: "_LoopState") -> int:
        alive = self._alive()
        if not alive:
            raise AllDevicesLostError("no devices left to dispatch to")
        if self.mode == "static":
            # pre-assignment, failing over to the next alive id
            n = self.pool.num_devices
            for j in range(n):
                d = (sid + j) % n
                if self.pool[d].health.alive:
                    return d
        return min(alive, key=lambda d: (state.clocks[d], d))

    def _next_device(self, exclude: int, state: "_LoopState") -> int:
        """Requeue target: earliest-free surviving device, preferring one
        that is not ``exclude`` (fall back to it if it is the only one)."""
        alive = self._alive()
        if not alive:
            raise AllDevicesLostError("no devices left to requeue onto")
        others = [d for d in alive if d != exclude]
        pool = others if others else alive
        return min(pool, key=lambda d: (state.clocks[d], d))

    # -- one shard, to completion ----------------------------------------
    def _execute_with_recovery(
        self, plan, run_shard, sid, d, policy: RecoveryPolicy, state: "_LoopState"
    ) -> None:
        shard = plan.shards[sid]
        attempts_on_device = 0
        total_attempts = 0
        while True:
            total_attempts += 1
            if total_attempts > policy.max_shard_attempts:
                raise RuntimeError(
                    f"shard {sid} failed {policy.max_shard_attempts} attempts; "
                    "fault plan exceeds the recovery policy's budget"
                )
            device = self.pool[d]
            device.health.shards_started += 1
            start = float(state.clocks[d])
            try:
                result = run_shard(device, shard)
            except DeviceLostError as e:
                end = start + float(e.wasted_seconds)
                state.clocks[d] = end
                device.health.fail(at_seconds=end)
                state.log.device_failures.append(FailureRecord(d, end, sid))
                state.events.append(
                    ShardEvent(
                        sid, d, start, end, 0, shard.num_points,
                        kind="lost", attempt=total_attempts - 1,
                    )
                )
                nd = self._next_device(exclude=d, state=state)
                state.log.requeues.append(RequeueRecord(sid, d, nd, "device_lost"))
                d = nd
                attempts_on_device = 0
                continue
            except TransientKernelError as e:
                wasted = float(e.wasted_seconds) + policy.transient_backoff_seconds
                end = start + wasted
                state.clocks[d] = end
                state.events.append(
                    ShardEvent(
                        sid, d, start, end, 0, shard.num_points,
                        kind="transient", attempt=attempts_on_device,
                    )
                )
                state.log.transients.append(
                    TransientRecord(sid, d, attempts_on_device, wasted)
                )
                attempts_on_device += 1
                if attempts_on_device > policy.max_transient_retries:
                    nd = self._next_device(exclude=d, state=state)
                    if nd != d:
                        state.log.requeues.append(
                            RequeueRecord(sid, d, nd, "transient_exhausted")
                        )
                        d = nd
                    attempts_on_device = 0
                continue
            end = start + float(result.total_seconds)
            state.clocks[d] = end
            state.results[sid] = result
            state.events.append(
                ShardEvent(
                    sid, d, start, end, int(result.num_pairs), shard.num_points,
                    kind="run", attempt=total_attempts - 1,
                )
            )
            return

    # -- straggler speculation -------------------------------------------
    def _speculate(self, plan, run_shard, policy: RecoveryPolicy, state: "_LoopState"):
        """After the queue drains: re-execute the straggling tail shard on
        an idle device; first result wins, the loser is cancelled."""
        tried: set[int] = set()
        while True:
            run_events = [
                (i, e) for i, e in enumerate(state.events) if e.kind == "run"
            ]
            candidates = [
                (i, e) for i, e in run_events if e.shard_id not in tried
            ]
            if not candidates:
                return
            durations = np.array([e.duration_seconds for _, e in run_events])
            median = float(np.median(durations))
            # the latest-finishing shard is the tail; ties to lowest shard id
            idx, tail = max(candidates, key=lambda kv: (kv[1].end_seconds, -kv[1].shard_id))
            tried.add(tail.shard_id)
            if median <= 0 or tail.duration_seconds <= policy.straggler_threshold * median:
                return
            # the tail must still be the last thing on its device, or a
            # cancelled copy already occupies it later and preemption would
            # rewind time through another event
            if state.clocks[tail.device_id] != tail.end_seconds:
                return
            backups = [d for d in self._alive() if d != tail.device_id]
            if not backups:
                return
            b = min(backups, key=lambda d: (state.clocks[d], d))
            t0 = float(state.clocks[b])
            if tail.end_seconds - t0 <= policy.speculation_min_benefit_seconds:
                return
            shard = plan.shards[tail.shard_id]
            self.pool[b].health.shards_started += 1
            try:
                copy = run_shard(self.pool[b], shard)
            except DeviceLostError as e:
                end = t0 + float(e.wasted_seconds)
                state.clocks[b] = end
                self.pool[b].health.fail(at_seconds=end)
                state.log.device_failures.append(FailureRecord(b, end, tail.shard_id))
                state.events.append(
                    ShardEvent(
                        tail.shard_id, b, t0, end, 0, shard.num_points, kind="lost"
                    )
                )
                state.log.speculations.append(
                    SpeculationRecord(
                        tail.shard_id, tail.device_id, b, False, end - t0
                    )
                )
                continue
            except TransientKernelError as e:
                end = t0 + float(e.wasted_seconds)
                state.clocks[b] = end
                state.events.append(
                    ShardEvent(
                        tail.shard_id, b, t0, end, 0, shard.num_points,
                        kind="transient",
                    )
                )
                state.log.transients.append(
                    TransientRecord(tail.shard_id, b, 0, end - t0)
                )
                state.log.speculations.append(
                    SpeculationRecord(
                        tail.shard_id, tail.device_id, b, False, end - t0
                    )
                )
                continue
            end2 = t0 + float(copy.total_seconds)
            if end2 < tail.end_seconds:
                # backup wins: primary is cancelled at the winner's finish
                state.events[idx] = replace(
                    tail, end_seconds=end2, num_pairs=0, kind="preempted"
                )
                state.clocks[tail.device_id] = end2
                state.clocks[b] = end2
                state.results[tail.shard_id] = copy
                state.events.append(
                    ShardEvent(
                        tail.shard_id, b, t0, end2, int(copy.num_pairs),
                        shard.num_points, kind="speculative",
                    )
                )
                state.log.speculations.append(
                    SpeculationRecord(
                        tail.shard_id, tail.device_id, b, True,
                        end2 - tail.start_seconds,
                    )
                )
            else:
                # primary wins: backup is cancelled when the primary finishes
                kill = max(t0, float(tail.end_seconds))
                state.clocks[b] = kill
                state.events.append(
                    ShardEvent(
                        tail.shard_id, b, t0, kill, 0, shard.num_points,
                        kind="cancelled",
                    )
                )
                state.log.speculations.append(
                    SpeculationRecord(
                        tail.shard_id, tail.device_id, b, False, kill - t0
                    )
                )


@dataclass
class _LoopState:
    """Mutable bundle threaded through the resilient loop's helpers."""

    clocks: np.ndarray
    results: list
    events: list[ShardEvent]
    log: RecoveryLog

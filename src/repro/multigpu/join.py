"""Multi-device sharded joins: the public facades.

:class:`MultiGpuSelfJoin` runs one self-join as shards over a
:class:`~repro.multigpu.pool.DevicePool`:

1. build the ε-grid index once on the host (shared, read-only — as the
   replicated index of a real multi-GPU deployment);
2. partition the query points into ``shards_per_device × N`` shards with
   the chosen planner (:mod:`repro.multigpu.sharding`);
3. drive the pool through the shard set with the chosen scheduler mode
   (:mod:`repro.multigpu.scheduler`); every shard runs the *unchanged*
   single-device join — same config, same kernels, same batching — via
   :meth:`repro.core.selfjoin.SelfJoin.execute_on_index` on its device's
   executor;
4. deterministically merge shard results (:mod:`repro.multigpu.merge`)
   and attach pool-level metrics (:mod:`repro.multigpu.metrics`).

The returned :class:`MultiJoinResult` *is a*
:class:`~repro.core.result.JoinResult` — exact pairs in canonical order,
simulated response time (now the pool makespan), WEE over every warp of
every device — plus the device-level trace and efficiency.

:class:`MultiGpuSimilarityJoin` does the same for the bipartite join,
sharding A's queries while every device reads B's index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OptimizationConfig
from repro.core.join import SimilarityJoin
from repro.core.result import JoinResult
from repro.core.selfjoin import SelfJoin
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_workloads
from repro.multigpu.merge import merge_shard_results
from repro.multigpu.metrics import PoolStats, pool_stats_from_trace
from repro.multigpu.pool import DevicePool
from repro.multigpu.scheduler import (
    SCHEDULE_MODES,
    HostScheduler,
    RecoveryLog,
    ScheduleTrace,
)
from repro.multigpu.sharding import (
    SHARD_PLANNERS,
    ShardPlan,
    plan_query_shards,
    plan_shards,
)
from repro.resilience.executor import FaultyExecutor
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RecoveryPolicy
from repro.simt import CostParams, DeviceSpec
from repro.util import as_points_array, check_epsilon

__all__ = ["MultiGpuSelfJoin", "MultiGpuSimilarityJoin", "MultiJoinResult"]


@dataclass(frozen=True)
class MultiJoinResult(JoinResult):
    """A :class:`JoinResult` plus the pool-level execution record."""

    planner: str = ""
    schedule_mode: str = ""
    num_devices: int = 1
    pool_stats: PoolStats | None = field(default=None, repr=False)
    trace: ScheduleTrace | None = field(default=None, repr=False)
    shard_plan: ShardPlan | None = field(default=None, repr=False)

    @property
    def device_execution_efficiency(self) -> float:
        """Busy device-time over allocated device-time — the pool's WEE."""
        if self.pool_stats is None:
            return 1.0
        return self.pool_stats.device_execution_efficiency

    @property
    def makespan_seconds(self) -> float:
        return self.trace.makespan_seconds if self.trace is not None else 0.0

    @property
    def serial_seconds(self) -> float:
        """Sum of shard times — what one device of the pool would take."""
        return self.pool_stats.total_busy_seconds if self.pool_stats else 0.0

    @property
    def recovery_log(self) -> RecoveryLog | None:
        """What the resilient scheduler did, or ``None`` on a fail-fast run."""
        return self.trace.recovery if self.trace is not None else None


class _PoolJoinBase:
    """Shared pool/planner/scheduler plumbing of the two facades."""

    def __init__(
        self,
        config: OptimizationConfig | None,
        *,
        pool: DevicePool | None,
        num_devices: int,
        planner: str,
        schedule: str,
        shards_per_device: int,
        device: DeviceSpec | None,
        costs: CostParams | None,
        seed: int,
        replay_mode: str,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ):
        self.config = config if config is not None else OptimizationConfig()
        if planner not in SHARD_PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; expected one of {SHARD_PLANNERS}"
            )
        if schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {schedule!r}; expected one of {SCHEDULE_MODES}"
            )
        if shards_per_device < 1:
            raise ValueError("shards_per_device must be >= 1")
        # injecting faults without a recovery story would just crash the
        # run, so a fault plan implies the default policy
        if fault_plan is not None and recovery is None:
            recovery = RecoveryPolicy()
        self.fault_plan = fault_plan
        self.recovery = recovery
        self.pool = (
            pool
            if pool is not None
            else DevicePool(
                num_devices,
                spec=device,
                costs=costs,
                seed=seed,
                replay_mode=replay_mode,
                overflow_policy="retry" if recovery is not None else "raise",
            )
        )
        self.planner = planner
        self.schedule = schedule
        self.shards_per_device = shards_per_device
        self.seed = seed
        self.replay_mode = replay_mode

    @property
    def num_shards(self) -> int:
        return self.shards_per_device * self.pool.num_devices

    def _describe(self, inner: str) -> str:
        tag = " resilient" if self.recovery is not None else ""
        return (
            f"multigpu[{self.pool.num_devices}dev {self.planner}/"
            f"{self.schedule}{tag}] {inner}"
        )

    def _arm_executors(self) -> dict:
        """Fresh fault-injecting wrappers for this run, keyed by device id.

        Wrappers hold mutable injection state (the transient RNG stream,
        the overflow budget), so each ``execute()`` builds new ones — that
        is what makes a seeded fault run reproduce its trace exactly.
        Returns an empty mapping when no fault plan is set.
        """
        self.pool.reset_health()
        if self.fault_plan is None or self.fault_plan.is_empty:
            return {}
        return {
            d.device_id: FaultyExecutor(
                d.executor, d.device_id, self.fault_plan, health=d.health
            )
            for d in self.pool
        }

    def _scheduler(self) -> HostScheduler:
        return HostScheduler(self.pool, self.schedule, recovery=self.recovery)

    def _assemble(
        self,
        results: list,
        trace: ScheduleTrace,
        plan: ShardPlan,
        *,
        epsilon: float,
        num_points: int,
        description: str,
    ) -> MultiJoinResult:
        # speculative re-execution is first-result-wins, so results[] holds
        # one copy per shard — but dedup anyway when it fired, making the
        # merge duplicate-safe by construction rather than by argument
        speculated = (
            trace.recovery is not None and trace.recovery.num_speculations > 0
        )
        merged = merge_shard_results(
            results,
            trace,
            epsilon=epsilon,
            num_points=num_points,
            dedup=plan.may_duplicate or speculated,
            config_description=description,
        )
        stats = pool_stats_from_trace(trace, results, planner=plan.planner)
        return MultiJoinResult(
            pairs=merged.pairs,
            epsilon=merged.epsilon,
            num_points=merged.num_points,
            batch_stats=merged.batch_stats,
            pipeline=merged.pipeline,
            config_description=merged.config_description,
            overflow_retries=merged.overflow_retries,
            overflow_wasted_seconds=merged.overflow_wasted_seconds,
            planner=plan.planner,
            schedule_mode=trace.mode,
            num_devices=self.pool.num_devices,
            pool_stats=stats,
            trace=trace,
            shard_plan=plan,
        )


class MultiGpuSelfJoin(_PoolJoinBase):
    """Self-join sharded over a pool of simulated devices.

    Parameters
    ----------
    config:
        Per-device optimization stack — any single-device configuration,
        including WORKQUEUE and balanced batches, runs unchanged inside
        each shard.
    pool:
        An explicit :class:`~repro.multigpu.pool.DevicePool` (e.g.
        heterogeneous); by default a homogeneous pool of ``num_devices``
        copies of ``device`` is built.
    planner:
        ``"strided"``, ``"cell_blocks"`` or ``"balanced"`` (LPT over the
        SORTBYWL workload estimates) — see :mod:`repro.multigpu.sharding`.
    schedule:
        ``"static"`` pre-assignment or the ``"dynamic"`` shared
        most-work-first device queue — see :mod:`repro.multigpu.scheduler`.
    shards_per_device:
        Queue depth: shards per device. 1 gives one shard per device
        (pure partitioning); larger values give the dynamic scheduler
        stealing granularity.
    fault_plan:
        Optional seeded :class:`~repro.resilience.faults.FaultPlan`; the
        pool's executors are wrapped per run to inject exactly those
        faults. Implies ``recovery=RecoveryPolicy()`` unless given.
    recovery:
        Optional :class:`~repro.resilience.policy.RecoveryPolicy`
        switching the scheduler to its self-healing loop (and the default
        pool to ``overflow_policy="retry"``); the merged pairs stay
        identical to the fault-free run.
    """

    def __init__(
        self,
        config: OptimizationConfig | None = None,
        *,
        pool: DevicePool | None = None,
        num_devices: int = 2,
        planner: str = "balanced",
        schedule: str = "dynamic",
        shards_per_device: int = 2,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        include_self: bool = True,
        seed: int = 0,
        replay_mode: str = "aggregate",
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ):
        super().__init__(
            config,
            pool=pool,
            num_devices=num_devices,
            planner=planner,
            schedule=schedule,
            shards_per_device=shards_per_device,
            device=device,
            costs=costs,
            seed=seed,
            replay_mode=replay_mode,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        self.include_self = include_self

    def execute(self, points, epsilon: float) -> MultiJoinResult:
        """Run the sharded self-join; exact pairs plus pool metrics."""
        check_epsilon(epsilon)
        points = as_points_array(points)
        index = GridIndex(points, epsilon)
        plan = plan_shards(
            index, self.num_shards, self.planner, pattern=self.config.pattern
        )
        inner = SelfJoin(
            self.config,
            include_self=self.include_self,
            seed=self.seed,
            replay_mode=self.replay_mode,
        )
        armed = self._arm_executors()

        def run_shard(device, shard):
            executor = armed.get(device.device_id, device.executor)
            return inner.execute_on_index(
                index, subset=shard.points, executor=executor
            )

        results, trace = self._scheduler().run(plan, run_shard)
        return self._assemble(
            results,
            trace,
            plan,
            epsilon=index.epsilon,
            num_points=index.num_points,
            description=self._describe(self.config.describe()),
        )


class MultiGpuSimilarityJoin(_PoolJoinBase):
    """Bipartite ε-join sharded over a pool: A's queries split across
    devices, B's index shared. ``pattern`` must stay ``"full"`` exactly as
    on the single-device bipartite path."""

    def __init__(
        self,
        config: OptimizationConfig | None = None,
        *,
        pool: DevicePool | None = None,
        num_devices: int = 2,
        planner: str = "balanced",
        schedule: str = "dynamic",
        shards_per_device: int = 2,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        seed: int = 0,
        replay_mode: str = "aggregate",
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ):
        super().__init__(
            config,
            pool=pool,
            num_devices=num_devices,
            planner=planner,
            schedule=schedule,
            shards_per_device=shards_per_device,
            device=device,
            costs=costs,
            seed=seed,
            replay_mode=replay_mode,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        if self.config.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "bipartite join requires pattern='full'"
            )

    def execute(self, left, right, epsilon: float) -> MultiJoinResult:
        """Join ``left`` against ``right``, sharding ``left``'s queries."""
        check_epsilon(epsilon)
        queries = as_points_array(left)
        index = GridIndex(right, epsilon)
        workloads, _ = bipartite_workloads(index, queries)
        plan = plan_query_shards(
            workloads.astype(np.float64), self.num_shards, self.planner
        )
        inner = SimilarityJoin(self.config, seed=self.seed)
        armed = self._arm_executors()

        def run_shard(device, shard):
            executor = armed.get(device.device_id, device.executor)
            return inner.execute_on_index(
                index, queries, subset=shard.points, executor=executor
            )

        results, trace = self._scheduler().run(plan, run_shard)
        return self._assemble(
            results,
            trace,
            plan,
            epsilon=float(index.epsilon),
            num_points=len(queries),
            description=self._describe(f"bipartite {self.config.describe()}"),
        )

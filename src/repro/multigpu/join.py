"""Multi-device sharded joins: the public facades.

:class:`MultiGpuSelfJoin` runs one self-join as shards over a
:class:`~repro.multigpu.pool.DevicePool`. Like the single-device facades
it owns no execution logic: it validates input, builds the ε-grid index
once on the host (shared, read-only — as the replicated index of a real
multi-GPU deployment), compiles a pooled
:class:`~repro.runtime.plan.JoinPlan` — whose shard stage partitions the
query points with the chosen planner (:mod:`repro.multigpu.sharding`) —
and hands the plan to the :class:`~repro.runtime.runner.Runner`, which
drives the pool through the shard set with the chosen scheduler mode
(:mod:`repro.multigpu.scheduler`). Every shard runs the *unchanged*
single-device join — same config, same kernels, same batching — then
shard results are deterministically merged (:mod:`repro.multigpu.merge`)
with pool-level metrics attached (:mod:`repro.multigpu.metrics`).

The returned :class:`MultiJoinResult` *is a*
:class:`~repro.core.result.JoinResult` — exact pairs in canonical order,
simulated response time (now the pool makespan), WEE over every warp of
every device — plus the device-level trace and efficiency.

:class:`MultiGpuSimilarityJoin` does the same for the bipartite join,
sharding A's queries while every device reads B's index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import OptimizationConfig
from repro.core.result import JoinResult
from repro.core.validation import validate_inputs
from repro.grid import GridIndex
from repro.multigpu.metrics import PoolStats
from repro.multigpu.pool import DevicePool
from repro.multigpu.scheduler import RecoveryLog, ScheduleTrace
from repro.multigpu.sharding import ShardPlan
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RecoveryPolicy
from repro.runtime.config import RuntimeConfig, ShardingConfig, _split_config
from repro.runtime.plan import compile_self_join, compile_similarity_join
from repro.runtime.runner import Runner
from repro.simt import CostParams, DeviceSpec

__all__ = ["MultiGpuSelfJoin", "MultiGpuSimilarityJoin", "MultiJoinResult"]


@dataclass(frozen=True)
class MultiJoinResult(JoinResult):
    """A :class:`JoinResult` plus the pool-level execution record."""

    planner: str = ""
    schedule_mode: str = ""
    num_devices: int = 1
    pool_stats: PoolStats | None = field(default=None, repr=False)
    trace: ScheduleTrace | None = field(default=None, repr=False)
    shard_plan: ShardPlan | None = field(default=None, repr=False)

    @property
    def device_execution_efficiency(self) -> float:
        """Busy device-time over allocated device-time — the pool's WEE."""
        if self.pool_stats is None:
            return 1.0
        return self.pool_stats.device_execution_efficiency

    @property
    def makespan_seconds(self) -> float:
        return self.trace.makespan_seconds if self.trace is not None else 0.0

    @property
    def serial_seconds(self) -> float:
        """Sum of shard times — what one device of the pool would take."""
        return self.pool_stats.total_busy_seconds if self.pool_stats else 0.0

    @property
    def recovery_log(self) -> RecoveryLog | None:
        """What the resilient scheduler did, or ``None`` on a fail-fast run."""
        return self.trace.recovery if self.trace is not None else None


class _PoolJoinBase:
    """Shared RuntimeConfig/pool resolution of the two pooled facades."""

    _facade = "MultiGpuJoin"

    def __init__(
        self,
        config,
        *,
        runtime: RuntimeConfig | None,
        pool: DevicePool | None,
        num_devices: int,
        planner: str,
        schedule: str,
        shards_per_device: int,
        device: DeviceSpec | None,
        costs: CostParams | None,
        include_self: bool,
        seed: int,
        replay_mode: str,
    ):
        config, runtime = _split_config(config, runtime, self._facade)
        if runtime is None:
            runtime = RuntimeConfig(
                optimization=config if config is not None else OptimizationConfig(),
                seed=seed,
                replay_mode=replay_mode,
                include_self=include_self,
                device=device,
                costs=costs,
                sharding=ShardingConfig(
                    num_devices=pool.num_devices if pool is not None else num_devices,
                    planner=planner,
                    schedule=schedule,
                    shards_per_device=shards_per_device,
                ),
            )
        else:
            if config is not None:
                runtime = runtime.with_(optimization=config)
            if runtime.sharding is None:
                runtime = runtime.with_(sharding=ShardingConfig())
            if pool is not None and runtime.sharding.num_devices != pool.num_devices:
                runtime = runtime.with_(
                    sharding=ShardingConfig(
                        num_devices=pool.num_devices,
                        planner=runtime.sharding.planner,
                        schedule=runtime.sharding.schedule,
                        shards_per_device=runtime.sharding.shards_per_device,
                    )
                )
        self.runtime = runtime
        self.pool = pool if pool is not None else DevicePool.from_runtime(runtime)

    # -- legacy attribute spellings ------------------------------------
    @property
    def config(self) -> OptimizationConfig:
        return self.runtime.optimization

    @property
    def planner(self) -> str:
        return self.runtime.sharding.planner

    @property
    def schedule(self) -> str:
        return self.runtime.sharding.schedule

    @property
    def shards_per_device(self) -> int:
        return self.runtime.sharding.shards_per_device

    @property
    def num_shards(self) -> int:
        return self.runtime.sharding.num_shards

    @property
    def seed(self) -> int:
        return self.runtime.seed

    @property
    def replay_mode(self) -> str:
        return self.runtime.replay_mode

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self.runtime.fault_plan

    @property
    def recovery(self) -> RecoveryPolicy | None:
        return self.runtime.recovery

    def _runner(self) -> Runner:
        return Runner(pool=self.pool)


class MultiGpuSelfJoin(_PoolJoinBase):
    """Self-join sharded over a pool of simulated devices.

    Parameters
    ----------
    config:
        Per-device optimization stack — any single-device configuration,
        including WORKQUEUE and balanced batches, runs unchanged inside
        each shard. A :class:`~repro.runtime.config.RuntimeConfig` is
        also accepted here (or via ``runtime=``).
    pool:
        An explicit :class:`~repro.multigpu.pool.DevicePool` (e.g.
        heterogeneous); by default a homogeneous pool is built from the
        runtime config. An explicit pool's size wins over
        ``num_devices``.
    planner:
        ``"strided"``, ``"cell_blocks"`` or ``"balanced"`` (LPT over the
        SORTBYWL workload estimates) — see :mod:`repro.multigpu.sharding`.
    schedule:
        ``"static"`` pre-assignment or the ``"dynamic"`` shared
        most-work-first device queue — see :mod:`repro.multigpu.scheduler`.
    shards_per_device:
        Queue depth: shards per device. 1 gives one shard per device
        (pure partitioning); larger values give the dynamic scheduler
        stealing granularity.

    Fault injection and recovery are runtime concerns: set
    ``RuntimeConfig.fault_plan`` / ``RuntimeConfig.recovery`` and pass the
    config via ``runtime=`` (a plan implies ``RecoveryPolicy()`` unless
    given; the merged pairs stay identical to the fault-free run).
    """

    _facade = "MultiGpuSelfJoin"

    def __init__(
        self,
        config: OptimizationConfig | RuntimeConfig | None = None,
        *,
        runtime: RuntimeConfig | None = None,
        pool: DevicePool | None = None,
        num_devices: int = 2,
        planner: str = "balanced",
        schedule: str = "dynamic",
        shards_per_device: int = 2,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        include_self: bool = True,
        seed: int = 0,
        replay_mode: str = "aggregate",
    ):
        super().__init__(
            config,
            runtime=runtime,
            pool=pool,
            num_devices=num_devices,
            planner=planner,
            schedule=schedule,
            shards_per_device=shards_per_device,
            device=device,
            costs=costs,
            include_self=include_self,
            seed=seed,
            replay_mode=replay_mode,
        )

    @property
    def include_self(self) -> bool:
        return self.runtime.include_self

    def execute(self, points, epsilon: float) -> MultiJoinResult:
        """Run the sharded self-join; exact pairs plus pool metrics."""
        points, epsilon = validate_inputs(points, epsilon=epsilon)
        index = GridIndex(points, epsilon)
        plan = compile_self_join(index, self.runtime)
        return self._runner().run(plan)


class MultiGpuSimilarityJoin(_PoolJoinBase):
    """Bipartite ε-join sharded over a pool: A's queries split across
    devices, B's index shared. ``pattern`` must stay ``"full"`` exactly as
    on the single-device bipartite path."""

    _facade = "MultiGpuSimilarityJoin"

    def __init__(
        self,
        config: OptimizationConfig | RuntimeConfig | None = None,
        *,
        runtime: RuntimeConfig | None = None,
        pool: DevicePool | None = None,
        num_devices: int = 2,
        planner: str = "balanced",
        schedule: str = "dynamic",
        shards_per_device: int = 2,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        seed: int = 0,
        replay_mode: str = "aggregate",
    ):
        super().__init__(
            config,
            runtime=runtime,
            pool=pool,
            num_devices=num_devices,
            planner=planner,
            schedule=schedule,
            shards_per_device=shards_per_device,
            device=device,
            costs=costs,
            include_self=True,
            seed=seed,
            replay_mode=replay_mode,
        )
        if self.config.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "bipartite join requires pattern='full'"
            )

    def execute(self, left, right, epsilon: float) -> MultiJoinResult:
        """Join ``left`` against ``right``, sharding ``left``'s queries."""
        left, right, epsilon = validate_inputs(
            left, right, epsilon=epsilon, names=("left", "right")
        )
        index = GridIndex(right, epsilon)
        plan = compile_similarity_join(index, left, self.runtime)
        return self._runner().run(plan)

"""Device-level load-balance metrics, mirroring :mod:`repro.simt.metrics`.

The paper's headline metric, warp execution efficiency, is
``active lane-cycles / (warp_size × warp cycles)`` — the fraction of the
warp's lane-time that did useful work. The pool analogue is **device
execution efficiency**:

    DEE = Σ_d busy_d / (num_devices × makespan)

the fraction of the pool's device-time that ran kernels rather than
idling at the tail of an unbalanced schedule. A perfectly level plan
approaches 1.0; one straggler device drags DEE toward 1/N exactly the way
one hot lane drags WEE toward 1/32 (Tables III–VI, one level up).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multigpu.scheduler import PRODUCTIVE_KINDS, ScheduleTrace
from repro.util import Table, format_seconds

__all__ = ["DeviceStats", "PoolStats", "pool_stats_from_trace"]


@dataclass(frozen=True)
class DeviceStats:
    """One device's accounting over a pool run."""

    device_id: int
    num_shards: int
    busy_seconds: float
    kernel_seconds: float
    num_pairs: int

    def utilization(self, makespan: float) -> float:
        """Fraction of the run this device spent busy."""
        if makespan == 0:
            return 1.0
        return self.busy_seconds / makespan


@dataclass(frozen=True)
class PoolStats:
    """Pool-wide load-balance metrics of one multi-device run."""

    devices: list[DeviceStats]
    makespan_seconds: float
    schedule_mode: str = ""
    planner: str = ""

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def total_busy_seconds(self) -> float:
        return float(sum(d.busy_seconds for d in self.devices))

    @property
    def device_execution_efficiency(self) -> float:
        """The WEE analogue: busy device-time over allocated device-time."""
        if self.makespan_seconds == 0 or self.num_devices == 0:
            return 1.0
        return self.total_busy_seconds / (self.num_devices * self.makespan_seconds)

    @property
    def busy_imbalance(self) -> float:
        """Max/mean device busy time — 1.0 is a perfectly level finish
        (the device-level twin of ``ScheduleResult.slot_imbalance``)."""
        busy = np.array([d.busy_seconds for d in self.devices])
        mean = busy.mean() if len(busy) else 0.0
        if mean == 0:
            return 1.0
        return float(busy.max() / mean)

    def render(self) -> str:
        label = f"{self.planner}/{self.schedule_mode}".strip("/")
        t = Table(
            ["device", "shards", "busy", "kernel", "pairs", "util (%)"],
            title=f"Pool run ({label})" if label else "Pool run",
        )
        for d in self.devices:
            t.add_row(
                [
                    d.device_id,
                    d.num_shards,
                    format_seconds(d.busy_seconds),
                    format_seconds(d.kernel_seconds),
                    d.num_pairs,
                    f"{100 * d.utilization(self.makespan_seconds):.1f}",
                ]
            )
        footer = (
            f"makespan {format_seconds(self.makespan_seconds)}  |  device "
            f"execution efficiency {100 * self.device_execution_efficiency:.1f}%  |  "
            f"busy imbalance {self.busy_imbalance:.2f}"
        )
        return t.render() + "\n" + footer

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


def pool_stats_from_trace(
    trace: ScheduleTrace,
    shard_results: list,
    *,
    planner: str = "",
) -> PoolStats:
    """Aggregate a scheduler trace plus per-shard results into pool stats.

    ``shard_results`` is indexed by shard id (the scheduler's return);
    ``kernel_seconds`` sums each shard's kernel-only time onto its device.
    """
    kernel_by_shard = np.array(
        [float(getattr(r, "kernel_seconds", 0.0)) if r is not None else 0.0
         for r in shard_results]
    )
    per_device: dict[int, dict] = {
        d: {"shards": 0, "busy": 0.0, "kernel": 0.0, "pairs": 0}
        for d in range(trace.num_devices)
    }
    for e in trace.events:
        acc = per_device[e.device_id]
        acc["shards"] += 1
        acc["busy"] += e.duration_seconds
        acc["pairs"] += e.num_pairs
        # failed/cancelled attempts burned busy time but their kernel work
        # produced nothing — only the surviving attempt carries the shard's
        # kernel seconds, so attribution stays retry-count independent
        if e.kind in PRODUCTIVE_KINDS and e.shard_id < len(kernel_by_shard):
            acc["kernel"] += kernel_by_shard[e.shard_id]
    devices = [
        DeviceStats(
            device_id=d,
            num_shards=acc["shards"],
            busy_seconds=acc["busy"],
            kernel_seconds=acc["kernel"],
            num_pairs=acc["pairs"],
        )
        for d, acc in sorted(per_device.items())
    ]
    return PoolStats(
        devices=devices,
        makespan_seconds=trace.makespan_seconds,
        schedule_mode=trace.mode,
        planner=planner,
    )

"""Deterministic merging of per-shard results into one ``JoinResult``.

Shards execute in whatever order the scheduler's simulated clock dictates,
so the merge must not depend on execution order: pairs are gathered in
*shard-id* order and then put into canonical lexicographic order, giving a
byte-identical result for any interleaving of the same shard set. Planners
that shard cell-granularly under a mirrored half-pattern are additionally
deduped (``np.unique`` row dedup) — single-coverage emission makes this a
no-op in practice, but the merge enforces the invariant rather than
assuming it.

The merged pipeline is synthesized from the scheduler trace: per-shard
kernel windows in dispatch order, total time = pool makespan. That keeps
``JoinResult.total_seconds`` meaning what it always means — the simulated
end-to-end response time — now of the whole pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import JoinResult
from repro.multigpu.scheduler import ScheduleTrace
from repro.simt.streams import PipelineResult

__all__ = ["merge_pairs", "merge_shard_results", "pipeline_from_trace"]


def merge_pairs(pairs_list: list[np.ndarray], *, dedup: bool = False) -> np.ndarray:
    """Concatenate pair blocks and sort lexicographically (stable order).

    ``dedup=True`` also removes duplicate rows — required when a shard
    plan could emit one pair from two shards.
    """
    blocks = [np.asarray(p, dtype=np.int64).reshape(-1, 2) for p in pairs_list if len(p)]
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(blocks, axis=0)
    if dedup:
        return np.unique(pairs, axis=0)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def pipeline_from_trace(trace: ScheduleTrace) -> PipelineResult:
    """A pool-level pipeline view: one 'kernel window' per shard event.

    Transfers are already accounted inside each shard's own 3-stream
    pipeline (their exposed time is part of the event duration), so the
    pool view sets ``transfer_end = kernel_end`` per event and reports the
    pool makespan as the total.
    """
    starts = np.array([e.start_seconds for e in trace.events], dtype=np.float64)
    ends = np.array([e.end_seconds for e in trace.events], dtype=np.float64)
    return PipelineResult(
        total_seconds=trace.makespan_seconds,
        kernel_start=starts,
        kernel_end=ends,
        transfer_end=ends.copy(),
    )


def merge_shard_results(
    shard_results: list,
    trace: ScheduleTrace,
    *,
    epsilon: float,
    num_points: int,
    dedup: bool = False,
    config_description: str = "",
) -> JoinResult:
    """Fold shard ``JoinResult``s into one pool-wide ``JoinResult``.

    ``shard_results`` is indexed by shard id; ``None`` entries (skipped or
    empty shards) contribute nothing. Batch stats concatenate in shard-id
    order so the merged warp execution efficiency aggregates every warp of
    every device, exactly as the single-device result does per batch.
    """
    present = [r for r in shard_results if r is not None]
    pairs = merge_pairs([r.pairs for r in present], dedup=dedup)
    batch_stats = [s for r in present for s in r.batch_stats]
    # a merged result is only as faithful as its least faithful shard:
    # any native ("none") shard means the pool-level cycle statistics
    # cannot be trusted as simulated
    fidelities = {getattr(r, "fidelity", "simulated") for r in present}
    fidelity = "none" if "none" in fidelities else "simulated"
    return JoinResult(
        pairs=pairs,
        epsilon=float(epsilon),
        num_points=int(num_points),
        batch_stats=batch_stats,
        pipeline=pipeline_from_trace(trace),
        config_description=config_description,
        overflow_retries=sum(getattr(r, "overflow_retries", 0) for r in present),
        overflow_wasted_seconds=float(
            sum(getattr(r, "overflow_wasted_seconds", 0.0) for r in present)
        ),
        fidelity=fidelity,
    )

"""Dataset and result persistence.

Plain-file interop so the library slots into pipelines: datasets load from
CSV or ``.npy``/``.npz``; join results save as ``.npz`` bundles (pairs +
metadata) or CSV pair lists, and round-trip losslessly.
"""

from repro.io.datasets import load_points, save_points
from repro.io.results import load_result_bundle, save_result_bundle, write_pairs_csv

__all__ = [
    "load_points",
    "load_result_bundle",
    "save_points",
    "save_result_bundle",
    "write_pairs_csv",
]

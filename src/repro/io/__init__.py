"""Dataset and result persistence.

Plain-file interop so the library slots into pipelines: datasets load from
CSV or ``.npy``/``.npz``; join results save as ``.npz`` bundles (pairs +
metadata) or CSV pair lists, and round-trip losslessly. Shard fragments
(:mod:`repro.io.checkpoints`) are the atomic on-disk records of the
checkpoint journal (:mod:`repro.resilience.checkpoint`) — full
:class:`~repro.core.result.JoinResult` round-trips, written per completed
shard so interrupted runs resume bit-identically.
"""

from repro.io.checkpoints import load_shard_fragment, save_shard_fragment
from repro.io.datasets import load_dataset, load_points, save_dataset, save_points
from repro.io.results import load_result_bundle, save_result_bundle, write_pairs_csv

__all__ = [
    "load_dataset",
    "load_points",
    "load_result_bundle",
    "load_shard_fragment",
    "save_dataset",
    "save_points",
    "save_result_bundle",
    "save_shard_fragment",
    "write_pairs_csv",
]

"""Persisting join results.

A *result bundle* is an ``.npz`` with the pair array plus the run's
metadata (ε, dataset size, configuration tag, simulated metrics), enough
to rehydrate an analysis without rerunning the join.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.result import JoinResult

__all__ = ["load_result_bundle", "save_result_bundle", "write_pairs_csv"]

_FORMAT_VERSION = 1


def save_result_bundle(path, result: JoinResult) -> None:
    """Save a :class:`JoinResult`'s pairs and metadata as ``.npz``."""
    path = Path(path)
    if path.suffix.lower() != ".npz":
        raise ValueError("result bundles are .npz files")
    meta = {
        "format_version": _FORMAT_VERSION,
        "epsilon": result.epsilon,
        "num_points": result.num_points,
        "config": result.config_description,
        "num_batches": result.num_batches,
        "total_seconds": result.total_seconds,
        "warp_execution_efficiency": result.warp_execution_efficiency,
    }
    np.savez_compressed(
        path,
        pairs=result.pairs,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_result_bundle(path) -> tuple[np.ndarray, dict]:
    """Load ``(pairs, metadata)`` from a result bundle."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"result bundle not found: {path}")
    with np.load(path) as archive:
        if "pairs" not in archive or "meta" not in archive:
            raise ValueError(f"{path} is not a result bundle")
        pairs = archive["pairs"].astype(np.int64)
        meta = json.loads(archive["meta"].tobytes().decode())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle version {meta.get('format_version')!r}"
        )
    return pairs, meta


def write_pairs_csv(path, pairs: np.ndarray) -> None:
    """Write a pair list as two-column CSV (``left,right``)."""
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (M, 2), got {pairs.shape}")
    np.savetxt(
        Path(path), pairs, delimiter=",", fmt="%d", header="left,right", comments=""
    )

"""Loading and saving point datasets (CSV and NumPy formats)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util import as_points_array

__all__ = ["load_points", "save_points"]


def load_points(path) -> np.ndarray:
    """Load a point dataset from ``.csv``, ``.npy`` or ``.npz``.

    CSV files may carry a header row (detected and skipped); ``.npz``
    archives must hold the dataset under the key ``points``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        return as_points_array(np.load(path))
    if suffix == ".npz":
        with np.load(path) as archive:
            if "points" not in archive:
                raise ValueError(f"{path} holds no 'points' array")
            return as_points_array(archive["points"])
    if suffix == ".csv":
        try:
            data = np.loadtxt(path, delimiter=",", ndmin=2)
        except ValueError:
            data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        return as_points_array(data)
    raise ValueError(f"unsupported dataset format {suffix!r} (csv/npy/npz)")


def save_points(path, points) -> None:
    """Save a dataset in the format implied by the file suffix."""
    path = Path(path)
    pts = as_points_array(points)
    suffix = path.suffix.lower()
    if suffix == ".npy":
        np.save(path, pts)
    elif suffix == ".npz":
        np.savez_compressed(path, points=pts)
    elif suffix == ".csv":
        header = ",".join(f"x{j}" for j in range(pts.shape[1]))
        np.savetxt(path, pts, delimiter=",", header=header, comments="")
    else:
        raise ValueError(f"unsupported dataset format {suffix!r} (csv/npy/npz)")

"""Loading and saving point datasets (CSV and NumPy formats)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util import as_points_array

__all__ = ["load_dataset", "load_points", "save_dataset", "save_points"]


def load_points(path) -> np.ndarray:
    """Load a point dataset from ``.csv``, ``.npy`` or ``.npz``.

    CSV files may carry a header row (detected and skipped); ``.npz``
    archives must hold the dataset under the key ``points``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        return as_points_array(np.load(path))
    if suffix == ".npz":
        with np.load(path) as archive:
            if "points" not in archive:
                raise ValueError(f"{path} holds no 'points' array")
            return as_points_array(archive["points"])
    if suffix == ".csv":
        try:
            data = np.loadtxt(path, delimiter=",", ndmin=2)
        except ValueError:
            data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        return as_points_array(data)
    raise ValueError(f"unsupported dataset format {suffix!r} (csv/npy/npz)")


def load_dataset(path, *, mmap: bool = False) -> np.ndarray:
    """Load a point dataset, optionally as a read-only memory map.

    With ``mmap=False`` this is :func:`load_points`. With ``mmap=True``
    the file must be a ``.npy`` in the canonical on-disk layout
    (2-D C-contiguous float64, as :func:`save_dataset` writes): the
    returned :class:`numpy.memmap` pages rows in from disk on demand, so
    multi-million-point joins never hold a full resident copy — the grid
    build, the sampled result-size estimator and the native engine's
    block-wise distance passes all touch only the slices they need.
    """
    if not mmap:
        return load_points(path)
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    if path.suffix.lower() != ".npy":
        raise ValueError(
            f"mmap=True needs an .npy file, got {path.suffix!r}: csv/npz "
            "formats must decompress/parse — there is nothing to map"
        )
    arr = np.load(path, mmap_mode="r")
    if arr.ndim != 2 or arr.shape[1] < 1:
        raise ValueError(
            f"{path}: expected a 2-D (N, n) point array, got shape {arr.shape}"
        )
    if arr.dtype != np.float64:
        raise ValueError(
            f"{path}: mmap loading needs float64 data (got {arr.dtype}); "
            "converting would materialize the full array — re-save with "
            "save_dataset() first"
        )
    return arr


def save_dataset(path, points) -> None:
    """Save a dataset in the format implied by the file suffix.

    Alias of :func:`save_points`; ``.npy`` output is the canonical
    mmap-able layout :func:`load_dataset` expects.
    """
    save_points(path, points)


def save_points(path, points) -> None:
    """Save a dataset in the format implied by the file suffix."""
    path = Path(path)
    pts = as_points_array(points)
    suffix = path.suffix.lower()
    if suffix == ".npy":
        np.save(path, pts)
    elif suffix == ".npz":
        np.savez_compressed(path, points=pts)
    elif suffix == ".csv":
        header = ",".join(f"x{j}" for j in range(pts.shape[1]))
        np.savetxt(path, pts, delimiter=",", header=header, comments="")
    else:
        raise ValueError(f"unsupported dataset format {suffix!r} (csv/npy/npz)")

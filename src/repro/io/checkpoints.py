"""Durable shard fragments — the on-disk format of the run journal.

A *shard fragment* is one completed shard's :class:`JoinResult`, written
as an ``.npz`` the moment the shard finishes so a crashed run can resume
without repeating the work (see :mod:`repro.resilience.checkpoint`). The
format extends the result-bundle idiom of :mod:`repro.io.results` with a
pickled execution payload (batch stats, pipeline, fragments) so the
reloaded result is *bit-identical* to the in-memory one — same pair
bytes, same float64 simulated times — which is what lets a resumed run
merge to the exact golden result.

Writes are atomic: the archive is written to a ``.tmp`` sibling and
``os.replace``\\ d into place, so a crash mid-write leaves either the
previous fragment or nothing — never a torn file. Fragments are an
internal trust-boundary format (they embed a pickle); load only
fragments your own runs wrote.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

import numpy as np

from repro.core.result import JoinResult

__all__ = ["load_shard_fragment", "save_shard_fragment"]

_FORMAT_VERSION = 1


def save_shard_fragment(
    path, result: JoinResult, *, shard_id: int, run_fingerprint: str
) -> int:
    """Atomically persist one shard's result; returns the bytes written."""
    path = Path(path)
    if path.suffix.lower() != ".npz":
        raise ValueError("shard fragments are .npz files")
    meta = {
        "format_version": _FORMAT_VERSION,
        "run": run_fingerprint,
        "shard_id": int(shard_id),
        "epsilon": result.epsilon,
        "num_points": result.num_points,
        "config": result.config_description,
        "num_pairs": result.num_pairs,
        "total_seconds": result.total_seconds,
        "overflow_retries": result.overflow_retries,
        "overflow_wasted_seconds": result.overflow_wasted_seconds,
        "fidelity": result.fidelity,
    }
    payload = pickle.dumps(
        (result.batch_stats, result.pipeline, result.fragments),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            pairs=result.pairs,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            payload=np.frombuffer(payload, dtype=np.uint8),
        )
    os.replace(tmp, path)
    return path.stat().st_size


def load_shard_fragment(path) -> tuple[JoinResult, dict]:
    """Load ``(result, metadata)`` from one shard fragment.

    The returned :class:`JoinResult` round-trips exactly: pair bytes,
    batch statistics, pipeline times and streaming fragments are the ones
    the original execution produced.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"shard fragment not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if "pairs" not in archive or "meta" not in archive or "payload" not in archive:
            raise ValueError(f"{path} is not a shard fragment")
        pairs = archive["pairs"].astype(np.int64)
        meta = json.loads(archive["meta"].tobytes().decode())
        payload = archive["payload"].tobytes()
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported shard fragment version {meta.get('format_version')!r}"
        )
    batch_stats, pipeline, fragments = pickle.loads(payload)
    result = JoinResult(
        pairs=pairs,
        epsilon=float(meta["epsilon"]),
        num_points=int(meta["num_points"]),
        batch_stats=batch_stats,
        pipeline=pipeline,
        config_description=meta.get("config", ""),
        overflow_retries=int(meta.get("overflow_retries", 0)),
        overflow_wasted_seconds=float(meta.get("overflow_wasted_seconds", 0.0)),
        fragments=fragments,
        fidelity=meta.get("fidelity", "simulated"),
    )
    return result, meta

"""``repro-join`` — run a similarity join on files from the command line.

Usage::

    repro-join self data.csv --eps 0.5 --preset combined --out result.npz
    repro-join bipartite obs.npy ref.npy --eps 1.0 --pairs-csv matches.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.core import PRESETS, SelfJoin, SimilarityJoin
from repro.io.datasets import load_points
from repro.io.results import save_result_bundle, write_pairs_csv
from repro.util import format_seconds

__all__ = ["main"]


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--eps", type=float, required=True, help="distance threshold")
    parser.add_argument(
        "--preset",
        default="combined",
        choices=sorted(PRESETS),
        help="optimization preset (default: combined)",
    )
    parser.add_argument("--capacity", type=int, default=None, help="result buffer size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write a .npz result bundle")
    parser.add_argument("--pairs-csv", default=None, help="write pairs as CSV")


def _config(args):
    cfg = PRESETS[args.preset]
    if args.capacity is not None:
        cfg = cfg.with_(batch_result_capacity=args.capacity)
    return cfg


def _finish(result, args) -> int:
    print(
        f"{result.config_description}: {result.num_pairs} pairs over "
        f"{result.num_batches} batch(es); simulated time "
        f"{format_seconds(result.total_seconds)}, WEE "
        f"{100 * result.warp_execution_efficiency:.1f}%"
    )
    if args.out:
        save_result_bundle(args.out, result)
        print(f"bundle written to {args.out}")
    if args.pairs_csv:
        write_pairs_csv(args.pairs_csv, result.sorted_pairs())
        print(f"pairs written to {args.pairs_csv}")
    return 0


def _cmd_self(args) -> int:
    points = load_points(args.dataset)
    cfg = _config(args)
    result = SelfJoin(cfg, seed=args.seed).execute(points, args.eps)
    return _finish(result, args)


def _cmd_bipartite(args) -> int:
    left = load_points(args.left)
    right = load_points(args.right)
    cfg = _config(args)
    if cfg.pattern != "full":
        print(
            f"preset {args.preset!r} uses a self-join-only access pattern; "
            "falling back to the full pattern for the bipartite join",
            file=sys.stderr,
        )
        cfg = cfg.with_(pattern="full")
    result = SimilarityJoin(cfg, seed=args.seed).execute(left, right, args.eps)
    return _finish(result, args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-join",
        description="Distance-similarity joins on the simulated GPU.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    self_p = sub.add_parser("self", help="self-join one dataset")
    self_p.add_argument("dataset", help="csv/npy/npz point file")
    _common(self_p)
    self_p.set_defaults(func=_cmd_self)

    bi_p = sub.add_parser("bipartite", help="join two datasets")
    bi_p.add_argument("left", help="query-side point file")
    bi_p.add_argument("right", help="indexed-side point file")
    _common(bi_p)
    bi_p.set_defaults(func=_cmd_bipartite)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Terminal rendering of the paper's figures: response time vs ε series.

The paper's Figures 9–12 are per-dataset subplots of response time against
ε, one series per configuration. :func:`render_figure` regenerates them as
ASCII charts (log-scaled y-axis, one glyph per configuration) directly
from a :class:`~repro.profiling.ProfileReport`.
"""

from __future__ import annotations

import math

from repro.profiling import ProfileReport
from repro.util import format_seconds

__all__ = ["render_figure", "render_series_plot"]

_GLYPHS = "ox+*#@%&"


def _log(v: float) -> float:
    return math.log10(max(v, 1e-12))


def render_series_plot(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
) -> str:
    """One ASCII chart: x = ε, y = seconds (log scale by default).

    ``series`` maps a configuration name to its (ε, seconds) points.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return f"{title}\n  (no data)"
    xs = sorted({p[0] for p in pts})
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_vals = [_log(y) for y in ys] if log_y else ys
    y_lo, y_hi = min(y_vals), max(y_vals)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        yv = _log(y) if log_y else y
        row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend = []
    for gi, (name, points) in enumerate(series.items()):
        glyph = _GLYPHS[gi % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in sorted(points):
            place(x, y, glyph)

    top = format_seconds(10**y_hi if log_y else y_hi)
    bottom = format_seconds(10**y_lo if log_y else y_lo)
    pad = max(len(top), len(bottom))
    lines = [title, "  " + "  ".join(legend)]
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}|")
    axis = f"{'':>{pad}} +{'-' * width}+"
    xticks = f"{'':>{pad}}  {x_lo:<10g}{'eps':^{max(0, width - 20)}}{x_hi:>10g}"
    lines.append(axis)
    lines.append(xticks)
    return "\n".join(lines)


def render_figure(report: ProfileReport, *, width: int = 64, height: int = 12) -> str:
    """Render a whole figure: one subplot per dataset in the report."""
    datasets: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for row in report.rows:
        datasets.setdefault(row.dataset, {}).setdefault(row.config, []).append(
            (row.epsilon, row.seconds)
        )
    parts = [report.title] if report.title else []
    for ds, series in datasets.items():
        parts.append(
            render_series_plot(
                f"-- {ds} --", series, width=width, height=height
            )
        )
    return "\n\n".join(parts)

"""``repro-bench`` — run paper experiments from the command line.

Usage::

    repro-bench list
    repro-bench run fig9 [--size N] [--trials T] [--out FILE] [--json FILE]
    repro-bench all [--size N] [--out DIR]
    repro-bench compare Gaia --eps 3.0 gpucalcglobal combined
    repro-bench validate [--size N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import (
    DEFAULT_SIZES,
    EXPERIMENTS,
    bench_size,
)
from repro.bench.runner import run_experiment
from repro.data import CATALOG
from repro.util import Table

__all__ = ["main"]


def _cmd_list(_args) -> int:
    t = Table(["id", "title", "datasets", "configs"], title="Experiments")
    for spec in EXPERIMENTS.values():
        t.add_row(
            [
                spec.exp_id,
                spec.title,
                len(spec.datasets),
                len(spec.configs),
            ]
        )
    print(t.render())
    return 0


def _render_table1() -> str:
    t = Table(
        ["dataset", "n", "paper |D|", "bench |D|", "distribution"],
        title=EXPERIMENTS["table1"].title,
    )
    for name in sorted(DEFAULT_SIZES):
        entry = CATALOG[name]
        t.add_row(
            [name, entry.ndim, entry.paper_size, bench_size(name), entry.distribution]
        )
    return t.render()


def _run_one(exp_id: str, args) -> str:
    if exp_id == "table1":
        return _render_table1()
    spec = EXPERIMENTS[exp_id]
    report = run_experiment(
        spec,
        size=args.size,
        seed=args.seed,
        trials=args.trials,
        selected_only=args.selected_only or exp_id.startswith("table"),
        progress=(lambda msg: print(f"  {msg}", file=sys.stderr))
        if args.verbose
        else None,
    )
    if getattr(args, "json", None):
        import json as _json
        from pathlib import Path as _Path

        _Path(args.json).write_text(
            _json.dumps(
                {"experiment": exp_id, "title": spec.title, "rows": report.to_records()},
                indent=2,
            )
            + "\n"
        )
    out = report.render()
    if exp_id.startswith("fig") and exp_id != "fig13":
        from repro.bench.figures import render_figure

        out = out + "\n\n" + render_figure(report)
    if exp_id == "fig13":
        lines = [out, "", "Speedups of `combined`:"]
        for base in ("superego", "gpucalcglobal"):
            sp = report.speedups(base)
            vals = [v["combined"] for v in sp.values() if "combined" in v]
            if vals:
                lines.append(
                    f"  vs {base}: avg {sum(vals) / len(vals):.2f}x, "
                    f"max {max(vals):.2f}x, min {min(vals):.2f}x"
                )
        out = "\n".join(lines)
    return out


def _cmd_run(args) -> int:
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; run `repro-bench list`",
            file=sys.stderr,
        )
        return 2
    out = _run_one(args.experiment, args)
    print(out)
    if args.out:
        Path(args.out).write_text(out + "\n")
    return 0


def _cmd_all(args) -> int:
    outputs = []
    for exp_id in EXPERIMENTS:
        print(f"== {exp_id} ==", file=sys.stderr)
        out = _run_one(exp_id, args)
        outputs.append(f"== {exp_id} ==\n{out}")
        print(out)
    if args.out:
        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "all_experiments.txt").write_text("\n\n".join(outputs) + "\n")
    return 0


def _cmd_compare(args) -> int:
    """Head-to-head comparison of presets on one dataset/ε grid."""
    from repro.bench.experiments import bench_device, load_bench_dataset
    from repro.bench.runner import BENCH_BATCH_CAPACITY
    from repro.core import PRESETS
    from repro.perfmodel import PerformanceModel
    from repro.util import format_seconds

    unknown = [p for p in args.presets if p not in PRESETS]
    if unknown:
        print(f"unknown presets: {unknown}; available: {sorted(PRESETS)}",
              file=sys.stderr)
        return 2
    if args.dataset not in DEFAULT_SIZES:
        print(f"unknown dataset {args.dataset!r}; available: "
              f"{sorted(DEFAULT_SIZES)}", file=sys.stderr)
        return 2

    points = load_bench_dataset(args.dataset, size=args.size, seed=args.seed)
    model = PerformanceModel(device=bench_device(), seed=args.seed)
    profile = model.profile(points, args.eps)
    t = Table(
        ["preset", "simulated time", "WEE", "batches", "speedup vs first"],
        title=f"{args.dataset}, |D|={len(points)}, eps={args.eps}",
    )
    base_time = None
    for preset in args.presets:
        cfg = PRESETS[preset].with_(batch_result_capacity=BENCH_BATCH_CAPACITY)
        run = model.estimate(profile, cfg)
        if base_time is None:
            base_time = run.total_seconds
        t.add_row(
            [
                preset,
                format_seconds(run.total_seconds),
                f"{100 * run.warp_execution_efficiency:.1f}%",
                run.num_batches,
                f"{base_time / run.total_seconds:.2f}x",
            ]
        )
    print(t.render())
    return 0


def _cmd_validate(args) -> int:
    """VM-vs-model agreement check: run both on small workloads and
    compare kernel time, WEE and result sizes."""
    import numpy as np

    from repro.core import PRESETS, SelfJoin
    from repro.perfmodel import PerformanceModel
    from repro.simt import CostParams

    size = args.size if args.size else 400
    costs = CostParams(c_emit=0.0)  # emission is the one modeled quantity
    rng = np.random.default_rng(args.seed)
    datasets = {
        "uniform": rng.uniform(0, 6, (size, 2)),
        "skewed": np.concatenate(
            [rng.normal(2, 0.3, (size // 2, 2)), rng.uniform(0, 8, (size // 2, 2))]
        ),
    }
    checks = 0
    worst = 0.0
    t = Table(
        ["dataset", "preset", "VM kernel", "model kernel", "WEE delta", "rows"],
        title="SIMT VM vs performance model",
    )
    for ds_name, pts in datasets.items():
        model = PerformanceModel(costs=costs, seed=args.seed)
        profile = model.profile(pts, 0.4)
        for preset in ("gpucalcglobal", "lidunicomp", "workqueue_k8", "combined"):
            cfg = PRESETS[preset]
            vm = SelfJoin(cfg, costs=costs, seed=args.seed).execute(pts, 0.4)
            run = model.estimate(profile, cfg)
            rel = abs(run.kernel_seconds - vm.kernel_seconds) / max(
                vm.kernel_seconds, 1e-30
            )
            wee_delta = abs(
                run.warp_execution_efficiency - vm.warp_execution_efficiency
            )
            rows_ok = run.total_result_rows == vm.num_pairs
            worst = max(worst, rel, wee_delta, 0.0 if rows_ok else 1.0)
            checks += 1
            t.add_row(
                [
                    ds_name,
                    preset,
                    f"{vm.kernel_seconds:.3e}s",
                    f"{run.kernel_seconds:.3e}s",
                    f"{wee_delta:.2e}",
                    "ok" if rows_ok else "MISMATCH",
                ]
            )
    print(t.render())
    if worst < 1e-9:
        print(f"\nvalidation passed: {checks} checks, max deviation {worst:.2e}")
        return 0
    print(f"\nvalidation FAILED: max deviation {worst:.2e}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the paper's tables and figures on the simulated substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--size", type=int, default=None, help="points per dataset")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument(
        "--selected-only",
        action="store_true",
        help="only the table-selected epsilon per dataset",
    )
    common.add_argument("--verbose", action="store_true")
    common.add_argument("--out", default=None, help="write output to file/dir")
    common.add_argument(
        "--json", default=None, help="also write rows as JSON to this file"
    )
    common.add_argument(
        "--trials", type=int, default=3,
        help="response-time trials to average (paper: 3)",
    )

    run_p = sub.add_parser("run", parents=[common], help="run one experiment")
    run_p.add_argument("experiment")
    run_p.set_defaults(func=_cmd_run)

    all_p = sub.add_parser("all", parents=[common], help="run every experiment")
    all_p.set_defaults(func=_cmd_all)

    val_p = sub.add_parser(
        "validate", parents=[common], help="check VM-vs-model agreement"
    )
    val_p.set_defaults(func=_cmd_validate)

    cmp_p = sub.add_parser(
        "compare", parents=[common], help="compare presets on one dataset"
    )
    cmp_p.add_argument("dataset", help="catalog name, e.g. Gaia")
    cmp_p.add_argument("--eps", type=float, required=True)
    cmp_p.add_argument(
        "presets", nargs="+", help="preset names, first is the baseline"
    )
    cmp_p.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

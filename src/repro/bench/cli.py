"""``repro-bench`` — run paper experiments and benchmark suites.

Usage::

    repro-bench list
    repro-bench run fig9 [--size N] [--trials T] [--out FILE] [--json FILE]
    repro-bench all [--size N] [--out DIR]
    repro-bench compare Gaia --eps 3.0 gpucalcglobal combined
    repro-bench validate [--size N]

    repro-bench suite list
    repro-bench suite run [SUITE ...] [--size tiny|small|full] [--seed S]
                          [--trials T] [--filter PAT] [--results-dir DIR]
    repro-bench suite gate [SUITE ...] [--size ...] [--strict]
    repro-bench suite history [SUITE ...] [--limit N]

``run``/``list`` address single paper experiments (model-level);
``suite ...`` drives the unified harness: declarative experiment specs
from :mod:`repro.bench.suites`, executed by :mod:`repro.bench.executors`,
gated by :mod:`repro.bench.gates`, with trajectories recorded to
``results/BENCH_<suite>.json`` by :mod:`repro.bench.history`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import (
    DEFAULT_SIZES,
    EXPERIMENTS,
    bench_size,
)
from repro.bench.runner import run_experiment
from repro.data import CATALOG
from repro.util import Table

__all__ = ["main", "standalone_main"]


def _cmd_list(_args) -> int:
    t = Table(["id", "title", "datasets", "configs"], title="Experiments")
    for spec in EXPERIMENTS.values():
        t.add_row(
            [
                spec.exp_id,
                spec.title,
                len(spec.datasets),
                len(spec.configs),
            ]
        )
    print(t.render())
    return 0


def _render_table1() -> str:
    t = Table(
        ["dataset", "n", "paper |D|", "bench |D|", "distribution"],
        title=EXPERIMENTS["table1"].title,
    )
    for name in sorted(DEFAULT_SIZES):
        entry = CATALOG[name]
        t.add_row(
            [name, entry.ndim, entry.paper_size, bench_size(name), entry.distribution]
        )
    return t.render()


def _run_one(exp_id: str, args) -> str:
    if exp_id == "table1":
        return _render_table1()
    spec = EXPERIMENTS[exp_id]
    report = run_experiment(
        spec,
        size=args.size,
        seed=args.seed,
        trials=args.trials,
        selected_only=args.selected_only or exp_id.startswith("table"),
        progress=(lambda msg: print(f"  {msg}", file=sys.stderr))
        if args.verbose
        else None,
    )
    if getattr(args, "json", None):
        import json as _json
        from pathlib import Path as _Path

        _Path(args.json).write_text(
            _json.dumps(
                {"experiment": exp_id, "title": spec.title, "rows": report.to_records()},
                indent=2,
            )
            + "\n"
        )
    out = report.render()
    if exp_id.startswith("fig") and exp_id != "fig13":
        from repro.bench.figures import render_figure

        out = out + "\n\n" + render_figure(report)
    if exp_id == "fig13":
        lines = [out, "", "Speedups of `combined`:"]
        for base in ("superego", "gpucalcglobal"):
            sp = report.speedups(base)
            vals = [v["combined"] for v in sp.values() if "combined" in v]
            if vals:
                lines.append(
                    f"  vs {base}: avg {sum(vals) / len(vals):.2f}x, "
                    f"max {max(vals):.2f}x, min {min(vals):.2f}x"
                )
        out = "\n".join(lines)
    return out


def _cmd_run(args) -> int:
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; run `repro-bench list`",
            file=sys.stderr,
        )
        return 2
    out = _run_one(args.experiment, args)
    print(out)
    if args.out:
        Path(args.out).write_text(out + "\n")
    return 0


def _cmd_all(args) -> int:
    outputs = []
    for exp_id in EXPERIMENTS:
        print(f"== {exp_id} ==", file=sys.stderr)
        out = _run_one(exp_id, args)
        outputs.append(f"== {exp_id} ==\n{out}")
        print(out)
    if args.out:
        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "all_experiments.txt").write_text("\n\n".join(outputs) + "\n")
    return 0


def _cmd_compare(args) -> int:
    """Head-to-head comparison of presets on one dataset/ε grid."""
    from repro.bench.experiments import bench_device, load_bench_dataset
    from repro.bench.runner import BENCH_BATCH_CAPACITY
    from repro.core import PRESETS
    from repro.perfmodel import PerformanceModel
    from repro.util import format_seconds

    unknown = [p for p in args.presets if p not in PRESETS]
    if unknown:
        print(f"unknown presets: {unknown}; available: {sorted(PRESETS)}",
              file=sys.stderr)
        return 2
    if args.dataset not in DEFAULT_SIZES:
        print(f"unknown dataset {args.dataset!r}; available: "
              f"{sorted(DEFAULT_SIZES)}", file=sys.stderr)
        return 2

    points = load_bench_dataset(args.dataset, size=args.size, seed=args.seed)
    model = PerformanceModel(device=bench_device(), seed=args.seed)
    profile = model.profile(points, args.eps)
    t = Table(
        ["preset", "simulated time", "WEE", "batches", "speedup vs first"],
        title=f"{args.dataset}, |D|={len(points)}, eps={args.eps}",
    )
    base_time = None
    for preset in args.presets:
        cfg = PRESETS[preset].with_(batch_result_capacity=BENCH_BATCH_CAPACITY)
        run = model.estimate(profile, cfg)
        if base_time is None:
            base_time = run.total_seconds
        t.add_row(
            [
                preset,
                format_seconds(run.total_seconds),
                f"{100 * run.warp_execution_efficiency:.1f}%",
                run.num_batches,
                f"{base_time / run.total_seconds:.2f}x",
            ]
        )
    print(t.render())
    return 0


def _cmd_validate(args) -> int:
    """VM-vs-model agreement check: run both on small workloads and
    compare kernel time, WEE and result sizes."""
    import numpy as np

    from repro.core import PRESETS, SelfJoin
    from repro.perfmodel import PerformanceModel
    from repro.simt import CostParams

    size = args.size if args.size else 400
    costs = CostParams(c_emit=0.0)  # emission is the one modeled quantity
    rng = np.random.default_rng(args.seed)
    datasets = {
        "uniform": rng.uniform(0, 6, (size, 2)),
        "skewed": np.concatenate(
            [rng.normal(2, 0.3, (size // 2, 2)), rng.uniform(0, 8, (size // 2, 2))]
        ),
    }
    checks = 0
    worst = 0.0
    t = Table(
        ["dataset", "preset", "VM kernel", "model kernel", "WEE delta", "rows"],
        title="SIMT VM vs performance model",
    )
    for ds_name, pts in datasets.items():
        model = PerformanceModel(costs=costs, seed=args.seed)
        profile = model.profile(pts, 0.4)
        for preset in ("gpucalcglobal", "lidunicomp", "workqueue_k8", "combined"):
            cfg = PRESETS[preset]
            vm = SelfJoin(cfg, costs=costs, seed=args.seed).execute(pts, 0.4)
            run = model.estimate(profile, cfg)
            rel = abs(run.kernel_seconds - vm.kernel_seconds) / max(
                vm.kernel_seconds, 1e-30
            )
            wee_delta = abs(
                run.warp_execution_efficiency - vm.warp_execution_efficiency
            )
            rows_ok = run.total_result_rows == vm.num_pairs
            worst = max(worst, rel, wee_delta, 0.0 if rows_ok else 1.0)
            checks += 1
            t.add_row(
                [
                    ds_name,
                    preset,
                    f"{vm.kernel_seconds:.3e}s",
                    f"{run.kernel_seconds:.3e}s",
                    f"{wee_delta:.2e}",
                    "ok" if rows_ok else "MISMATCH",
                ]
            )
    print(t.render())
    if worst < 1e-9:
        print(f"\nvalidation passed: {checks} checks, max deviation {worst:.2e}")
        return 0
    print(f"\nvalidation FAILED: max deviation {worst:.2e}", file=sys.stderr)
    return 1


# ---------------------------------------------------------------------------
# `suite` subcommands: the unified benchmark harness


def _suite_progress(args):
    if getattr(args, "verbose", False):
        return lambda msg: print(f"  {msg}", file=sys.stderr)
    return None


def _resolve_suites(names):
    from repro.bench.suites import SUITES, get_suite

    try:
        return [get_suite(name) for name in (names or list(SUITES))]
    except KeyError as err:
        raise SystemExit(f"unknown suite {err.args[0]!r}; available: {sorted(SUITES)}")


def _execute_suites(args):
    """Run the selected suites; returns [(suite, SuiteRun, history entry)]."""
    from repro.bench.executors import RunContext, run_suite
    from repro.bench.history import make_entry

    ctx = RunContext(
        size=args.size, seed=args.seed, trials=args.trials, progress=_suite_progress(args)
    )
    out = []
    for suite in _resolve_suites(args.suites):
        print(f"== suite {suite.suite_id} (size={args.size}) ==", file=sys.stderr)
        run = run_suite(suite, ctx, pattern=args.pattern)
        entry = make_entry(
            run.results,
            size=args.size,
            seed=args.seed,
            trials=ctx.effective_trials(),
            suite_checks=run.suite_checks,
        )
        out.append((suite, run, entry))
    return out


def _render_deltas(delta_map: dict) -> str:
    t = Table(["experiment", "wall", "throughput", "metrics"], title="vs recorded history")
    for exp_id, d in delta_map.items():

        def fmt(ratio):
            return "-" if ratio is None else f"{ratio:.2f}x"

        t.add_row(
            [
                exp_id,
                fmt(d["wall_ratio"]),
                fmt(d["throughput_ratio"]),
                "CHANGED" if d["metrics_changed"] else "same",
            ]
        )
    return t.render()


def _cmd_suite_list(_args) -> int:
    from repro.bench.suites import SUITES

    t = Table(["suite", "experiments", "kinds", "title"], title="Benchmark suites")
    for suite in SUITES.values():
        kinds = sorted({e.kind for e in suite.experiments})
        t.add_row([suite.suite_id, len(suite.experiments), ",".join(kinds), suite.title])
    print(t.render())
    return 0


def _cmd_suite_run(args) -> int:
    from repro.bench.history import bench_path, deltas, latest_comparable, record_entry

    failed = False
    for suite, run, entry in _execute_suites(args):
        print(run.render_summary())
        path = bench_path(args.results_dir, suite.suite_id)
        if args.pattern:
            print(f"(--filter active: not recording into {path})", file=sys.stderr)
        elif args.no_record:
            pass
        else:
            history = record_entry(path, suite.suite_id, entry)
            previous = latest_comparable(
                history, size=args.size, seed=args.seed, skip_last=True
            )
            delta_map = deltas(entry, previous)
            if delta_map:
                print(_render_deltas(delta_map))
            print(f"recorded -> {path}", file=sys.stderr)
        if not run.checks_passed:
            failed = True
    if failed:
        print("\nFAILED: correctness cross-checks did not pass", file=sys.stderr)
    return 1 if failed else 0


def _cmd_suite_gate(args) -> int:
    from repro.bench.gates import (
        GateReport,
        Violation,
        evaluate_tier_a,
        evaluate_tier_b,
        evaluate_tier_c,
    )
    from repro.bench.history import bench_path, latest_comparable, load_history

    report = GateReport()
    for suite, run, entry in _execute_suites(args):
        print(run.render_summary())
        report.extend(evaluate_tier_a(run.results))
        report.extend(
            Violation(
                "A",
                suite.suite_id,
                "<suite>",
                f"suite check {check.name!r} failed"
                + (f": {check.detail}" if check.detail else ""),
            )
            for check in run.suite_checks
            if not check.passed
        )
        report.extend(evaluate_tier_b(run.results, args.size))
        history = load_history(bench_path(args.results_dir, suite.suite_id))
        previous = latest_comparable(history, size=args.size)
        report.extend(
            evaluate_tier_c(suite.suite_id, entry, previous),
            advisory=not args.strict,
        )
    print()
    print(report.render())
    return 0 if report.ok else 1


def _cmd_suite_history(args) -> int:
    from repro.bench.history import bench_path, load_history, render_history

    for suite in _resolve_suites(args.suites):
        path = bench_path(args.results_dir, suite.suite_id)
        history = load_history(path)
        if not history["entries"]:
            print(f"suite {suite.suite_id}: no recorded history at {path}")
            continue
        print(render_history(history, limit=args.limit))
    return 0


def _suite_common_args(parser, *, default_size: str = "tiny") -> None:
    from repro.bench.suites import SIZE_CLASSES

    parser.add_argument("suites", nargs="*", help="suite ids (default: all registered)")
    parser.add_argument("--size", choices=SIZE_CLASSES, default=default_size)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trials", type=int, default=None, help="timing repetitions (default per size)"
    )
    parser.add_argument(
        "--filter",
        dest="pattern",
        default=None,
        help="comma-separated experiment-id substrings",
    )
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--verbose", action="store_true")


def standalone_main(suite_id: str, argv=None, *, pattern: str | None = None) -> int:
    """Entry point for the thin ``benchmarks/bench_*.py`` shims.

    Each legacy script maps to one registered suite (optionally
    pre-filtered to the experiments it used to cover) and keeps a
    standalone CLI: ``--size/--seed/--trials/--filter/--json``, plus
    ``--quick`` as a back-compat alias for ``--size tiny``. With
    ``--json``, writes the seed-deterministic payload — identical seeds
    produce identical files.
    """
    import json

    from repro.bench.executors import RunContext, run_suite
    from repro.bench.history import deterministic_payload
    from repro.bench.suites import SIZE_CLASSES, get_suite

    parser = argparse.ArgumentParser(
        prog=f"bench[{suite_id}]",
        description=f"Run benchmark suite {suite_id!r} via the unified harness.",
    )
    parser.add_argument("--size", choices=SIZE_CLASSES, default="small")
    parser.add_argument("--quick", action="store_true", help="alias for --size tiny")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--filter", dest="pattern", default=pattern)
    parser.add_argument(
        "--json", default=None, help="write the deterministic results payload here"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    size = "tiny" if args.quick else args.size

    suite = get_suite(suite_id)
    ctx = RunContext(
        size=size, seed=args.seed, trials=args.trials, progress=_suite_progress(args)
    )
    run = run_suite(suite, ctx, pattern=args.pattern)
    print(run.render_summary())
    if args.json:
        payload = deterministic_payload(
            suite_id, run.results, size=size, seed=args.seed
        )
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if not run.checks_passed:
        print("FAILED: correctness cross-checks did not pass", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the paper's tables and figures on the simulated substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--size", type=int, default=None, help="points per dataset")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument(
        "--selected-only",
        action="store_true",
        help="only the table-selected epsilon per dataset",
    )
    common.add_argument("--verbose", action="store_true")
    common.add_argument("--out", default=None, help="write output to file/dir")
    common.add_argument(
        "--json", default=None, help="also write rows as JSON to this file"
    )
    common.add_argument(
        "--trials", type=int, default=3,
        help="response-time trials to average (paper: 3)",
    )

    run_p = sub.add_parser("run", parents=[common], help="run one experiment")
    run_p.add_argument("experiment")
    run_p.set_defaults(func=_cmd_run)

    all_p = sub.add_parser("all", parents=[common], help="run every experiment")
    all_p.set_defaults(func=_cmd_all)

    val_p = sub.add_parser(
        "validate", parents=[common], help="check VM-vs-model agreement"
    )
    val_p.set_defaults(func=_cmd_validate)

    cmp_p = sub.add_parser(
        "compare", parents=[common], help="compare presets on one dataset"
    )
    cmp_p.add_argument("dataset", help="catalog name, e.g. Gaia")
    cmp_p.add_argument("--eps", type=float, required=True)
    cmp_p.add_argument(
        "presets", nargs="+", help="preset names, first is the baseline"
    )
    cmp_p.set_defaults(func=_cmd_compare)

    suite_p = sub.add_parser("suite", help="unified benchmark harness")
    suite_sub = suite_p.add_subparsers(dest="suite_command", required=True)

    suite_sub.add_parser("list", help="list registered suites").set_defaults(
        func=_cmd_suite_list
    )

    srun_p = suite_sub.add_parser(
        "run", help="run suites, record BENCH_<suite>.json trajectories"
    )
    _suite_common_args(srun_p)
    srun_p.add_argument(
        "--no-record", action="store_true", help="do not append to BENCH history files"
    )
    srun_p.set_defaults(func=_cmd_suite_run)

    sgate_p = suite_sub.add_parser(
        "gate", help="run suites and enforce tiered perf/correctness gates"
    )
    _suite_common_args(sgate_p)
    sgate_p.add_argument(
        "--strict",
        action="store_true",
        help="enforce tier C trajectory deltas (advisory otherwise)",
    )
    sgate_p.set_defaults(func=_cmd_suite_gate)

    shist_p = suite_sub.add_parser(
        "history", help="render recorded BENCH_<suite>.json trajectories"
    )
    shist_p.add_argument("suites", nargs="*")
    shist_p.add_argument("--results-dir", default="results")
    shist_p.add_argument("--limit", type=int, default=10)
    shist_p.set_defaults(func=_cmd_suite_history)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``python -m repro.bench`` — alias for the repro-bench CLI."""

from repro.bench.cli import main

raise SystemExit(main())

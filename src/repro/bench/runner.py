"""Execution of experiment specs against the performance model.

One :class:`~repro.perfmodel.WorkloadProfile` is built per (dataset, ε) and
shared across all GPU configurations; the ``"superego"`` config runs the
real EGO-join in counting mode and converts its operation counts to modeled
16-core seconds.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.bench.experiments import (
    ExperimentSpec,
    bench_cpu,
    bench_device,
    load_bench_dataset,
)
from repro.core import PRESETS
from repro.ego import SuperEgo
from repro.perfmodel import PerformanceModel
from repro.perfmodel.cputime import superego_seconds
from repro.profiling import ProfileReport, ProfileRow

__all__ = ["run_experiment", "run_superego_row"]

# Bench-scale result buffers: large enough that heavy sweeps run a handful
# of batches each holding multiple scheduling waves (the paper's regime);
# the batching machinery itself is stressed by abl_buffer/abl_estimator and
# the unit tests with deliberately small buffers.
BENCH_BATCH_CAPACITY = 10_000_000


def run_superego_row(points, epsilon: float, *, dataset: str, cpu=None) -> ProfileRow:
    """Run SUPER-EGO in counting mode and model its parallel CPU time.

    ``cpu`` defaults to the bench-scaled host (see
    :func:`repro.bench.experiments.bench_cpu`).
    """
    ego = SuperEgo()
    res = ego.join(points, epsilon, collect_pairs=False)
    run = superego_seconds(
        res.counts,
        len(points),
        points.shape[1],
        cpu=cpu if cpu is not None else bench_cpu(),
    )
    return ProfileRow(
        dataset=dataset,
        epsilon=float(epsilon),
        config="superego",
        wee_percent=float("nan"),  # CPU: no warps
        seconds=run.total_seconds,
        num_batches=1,
        num_warps=0,
        result_rows=ego.result_rows(res.counts, len(points)),
    )


def run_experiment(
    spec: ExperimentSpec,
    *,
    size: int | None = None,
    seed: int = 0,
    trials: int = 3,
    selected_only: bool = False,
    model: PerformanceModel | None = None,
    batch_capacity: int = BENCH_BATCH_CAPACITY,
    datasets: Iterable[str] | None = None,
    progress=None,
) -> ProfileReport:
    """Run every (dataset, ε, config) cell of an experiment.

    ``trials`` follows the paper's methodology ("we average the response
    times over three trials"): the reported time averages that many runs,
    each perturbing the one stochastic component — the hardware
    scheduler's issue-order seed. ``selected_only`` restricts each dataset
    to the ε its companion table profiles. ``progress`` is an optional
    callable receiving one status string per completed cell.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    model = model if model is not None else PerformanceModel(device=bench_device(), seed=seed)
    report = ProfileReport(spec.title)
    names = tuple(datasets) if datasets is not None else spec.datasets
    for ds in names:
        points = load_bench_dataset(ds, size=size, seed=seed)
        for eps in spec.sweep(ds, selected_only=selected_only):
            profile = None
            for config in spec.configs:
                if config == "superego":
                    row = run_superego_row(points, eps, dataset=ds)
                else:
                    if profile is None:
                        profile = model.profile(points, eps)
                    cfg = PRESETS[config].with_(batch_result_capacity=batch_capacity)
                    runs = [
                        model.estimate(profile, cfg, seed=seed + t)
                        for t in range(trials)
                    ]
                    run = runs[0]
                    mean_seconds = sum(r.total_seconds for r in runs) / len(runs)
                    row = ProfileRow(
                        dataset=ds,
                        epsilon=float(eps),
                        config=config,
                        wee_percent=100.0 * run.warp_execution_efficiency,
                        seconds=mean_seconds,
                        num_batches=run.num_batches,
                        num_warps=run.num_warps,
                        result_rows=run.total_result_rows,
                    )
                report.add(row)
                if progress is not None:
                    progress(
                        f"{spec.exp_id}: {ds} eps={eps} {config} -> "
                        f"{row.seconds * 1e3:.2f}ms"
                        + (
                            ""
                            if math.isnan(row.wee_percent)
                            else f" (WEE {row.wee_percent:.1f}%)"
                        )
                    )
    return report

"""The experiment harness: one driver per paper table/figure, plus the
unified benchmark-suite layer.

- :mod:`repro.bench.experiments` — the registry mapping each of the
  paper's evaluation artifacts (Figures 9–13, Tables I & III–VI) to
  datasets, ε sweeps and configurations at benchmark scale;
- :mod:`repro.bench.runner` — executes a spec against the performance
  model (and the SUPER-EGO baseline) and returns a
  :class:`~repro.profiling.ProfileReport`;
- :mod:`repro.bench.suites` — declarative benchmark suites: every
  ``benchmarks/bench_*.py`` script is a registration here;
- :mod:`repro.bench.executors` — runs a suite and measures it;
- :mod:`repro.bench.gates` — tiered gates (correctness / budgets /
  trajectory) over suite results;
- :mod:`repro.bench.history` — ``results/BENCH_<suite>.json``
  trajectory files;
- :mod:`repro.bench.cli` — ``repro-bench`` / ``python -m repro.bench``.
"""

from repro.bench.executors import RunContext, SuiteRun, run_suite
from repro.bench.experiments import EXPERIMENTS, ExperimentSpec
from repro.bench.gates import Budget, CheckResult, GateReport, Violation
from repro.bench.runner import run_experiment
from repro.bench.suites import (
    SUITES,
    BenchExperiment,
    BenchSuite,
    ExperimentResult,
    Variant,
    Workload,
    get_suite,
    register_suite,
)

__all__ = [
    "EXPERIMENTS",
    "SUITES",
    "BenchExperiment",
    "BenchSuite",
    "Budget",
    "CheckResult",
    "ExperimentResult",
    "ExperimentSpec",
    "GateReport",
    "RunContext",
    "SuiteRun",
    "Variant",
    "Violation",
    "Workload",
    "get_suite",
    "register_suite",
    "run_experiment",
    "run_suite",
]

"""The experiment harness: one driver per paper table/figure.

- :mod:`repro.bench.experiments` — the registry mapping each of the
  paper's evaluation artifacts (Figures 9–13, Tables I & III–VI) to
  datasets, ε sweeps and configurations at benchmark scale;
- :mod:`repro.bench.runner` — executes a spec against the performance
  model (and the SUPER-EGO baseline) and returns a
  :class:`~repro.profiling.ProfileReport`;
- :mod:`repro.bench.cli` — ``repro-bench`` / ``python -m repro.bench``.
"""

from repro.bench.experiments import EXPERIMENTS, ExperimentSpec
from repro.bench.runner import run_experiment

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment"]

"""The paper's published numbers, machine-readable.

Every quantitative claim of the paper's evaluation that this reproduction
compares against, transcribed from the text (Section IV and Tables III–VI
where legible; the headline speedups from the abstract/conclusion). Used
by the comparison bench and EXPERIMENTS.md so "paper said / we measured"
never drifts from a single source.

Times are seconds on the authors' testbed (Quadro GP100 + 2×E5-2620v4) at
the paper's dataset sizes — *not* comparable to simulated bench-scale
times; ratios and orderings are.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_HEADLINE_SPEEDUPS",
    "PAPER_TABLE5",
    "PaperCell",
    "headline_bands",
]


@dataclass(frozen=True)
class PaperCell:
    """One (dataset, ε) measurement pair from a paper table."""

    dataset: str
    epsilon: float
    baseline_wee: float  # GPUCALCGLOBAL WEE %
    optimized_wee: float  # WORKQUEUE k=8 WEE %
    baseline_seconds: float
    optimized_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.optimized_seconds

    @property
    def wee_gain(self) -> float:
        return self.optimized_wee - self.baseline_wee


#: Table V — GPUCALCGLOBAL vs WORKQUEUE k=8 (the paper's central table).
PAPER_TABLE5: tuple[PaperCell, ...] = (
    PaperCell("Expo2D2M", 0.2, 26.6, 55.5, 74.6, 48.7),
    PaperCell("Expo6D2M", 1.2, 15.2, 42.9, 71.4, 19.1),
    PaperCell("Unif2D2M", 1.0, 75.4, 75.4, 5.7, 3.9),
    PaperCell("Unif6D2M", 8.0, 51.3, 48.2, 3.3, 3.3),
)

#: Abstract / Figure 13: speedups of WORKQUEUE + LID-UNICOMP + k=8.
PAPER_HEADLINE_SPEEDUPS = {
    "superego": {"max": 10.7, "avg": 2.5},
    "gpucalcglobal": {"max": 9.7, "avg": 1.6},
}


def headline_bands(baseline: str, *, slack: float = 2.5) -> tuple[float, float]:
    """Acceptance band for a reproduced average speedup.

    The reproduction's average should sit within a multiplicative ``slack``
    of the paper's average (shape, not absolute agreement — see
    EXPERIMENTS.md §calibration).
    """
    ref = PAPER_HEADLINE_SPEEDUPS[baseline]["avg"]
    return ref / slack, ref * slack

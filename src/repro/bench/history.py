"""``BENCH_<suite>.json`` trajectory files: record, load, compare.

Each suite owns one JSON file holding a bounded list of history entries.
An entry is one ``suite run`` at a given (size, seed): per-experiment
wall-clock and throughput, the deterministic metrics with a stable
digest, and the tier-A check tallies. Committed entries are the baseline
tier-C gates compare against, and ``suite history`` renders the
trajectory with per-entry deltas.

Timing fields (``wall_seconds``, ``throughput``) are *measurements* and
vary run to run; ``metrics`` and ``digest`` are seed-deterministic —
two runs with the same seed, size and code must agree on them exactly.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from collections.abc import Mapping
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "bench_path",
    "entry_digest",
    "deltas",
    "deterministic_payload",
    "latest_comparable",
    "load_history",
    "make_entry",
    "record_entry",
    "render_history",
]

SCHEMA_VERSION = 1

#: bounded trajectory: oldest entries fall off so the committed files
#: stay reviewable
MAX_ENTRIES = 30


def bench_path(directory: str | Path, suite_id: str) -> Path:
    return Path(directory) / f"BENCH_{suite_id}.json"


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def entry_digest(metrics: Mapping) -> str:
    """Stable digest of an experiment's deterministic payload."""
    blob = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def make_entry(results, *, size: str, seed: int, trials: int, suite_checks=()) -> dict:
    """Build one history entry from a suite's ExperimentResults."""
    experiments = {}
    for res in results:
        experiments[res.exp_id] = {
            "wall_seconds": round(res.wall_seconds, 6),
            "throughput": None if res.throughput is None else round(res.throughput, 3),
            "checks_passed": all(c.passed for c in res.checks),
            "checks": [c.to_record() for c in res.checks],
            "metrics": res.metrics,
            "digest": entry_digest(res.metrics),
        }
    return {
        "recorded_unix": int(time.time()),
        "git": _git_revision(),
        "size": size,
        "seed": seed,
        "trials": trials,
        "suite_checks": [c.to_record() for c in suite_checks],
        "experiments": experiments,
    }


def deterministic_payload(suite_id: str, results, *, size: str, seed: int) -> dict:
    """The seed-deterministic slice of a suite run.

    Two runs of the same code with identical ``--seed``/``--size`` must
    produce byte-identical output here — no wall-clock, no throughput,
    no check details that embed measured timings.
    """
    return {
        "suite": suite_id,
        "size": size,
        "seed": seed,
        "experiments": {
            r.exp_id: {"metrics": r.metrics, "digest": entry_digest(r.metrics)}
            for r in results
        },
    }


def load_history(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "suite": path.stem.removeprefix("BENCH_"), "entries": []}
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported BENCH schema {data.get('schema')!r} "
            f"(this tool reads schema {SCHEMA_VERSION})"
        )
    data.setdefault("entries", [])
    return data


def record_entry(
    path: str | Path, suite_id: str, entry: Mapping, *, keep: int = MAX_ENTRIES
) -> dict:
    """Append ``entry`` to the suite's trajectory file and rewrite it."""
    history = load_history(path)
    history["suite"] = suite_id
    history["schema"] = SCHEMA_VERSION
    history["entries"] = (history["entries"] + [dict(entry)])[-keep:]
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(history, indent=2) + "\n")
    return history


def latest_comparable(
    history: Mapping, *, size: str, seed: int | None = None, skip_last: bool = False
) -> dict | None:
    """Most recent entry matching the size class (and seed, if given).

    ``skip_last`` ignores the newest entry — used when that entry is the
    run currently being compared.
    """
    entries = list(history.get("entries", []))
    if skip_last and entries:
        entries = entries[:-1]
    for entry in reversed(entries):
        if entry.get("size") != size:
            continue
        if seed is not None and entry.get("seed") != seed:
            continue
        return entry
    return None


def deltas(current: Mapping, previous: Mapping | None) -> dict[str, dict]:
    """Per-experiment comparison of two entries.

    Returns ``{exp_id: {wall_ratio, throughput_ratio, metrics_changed}}``
    for experiments present in both; ratios are current/previous (wall:
    < 1 is faster) and None when the previous value is missing or zero.
    """
    if previous is None:
        return {}
    out: dict[str, dict] = {}
    prev_exps = previous.get("experiments", {})
    for exp_id, cur in current.get("experiments", {}).items():
        prev = prev_exps.get(exp_id)
        if prev is None:
            continue

        def ratio(a, b):
            return None if not a or not b else round(a / b, 4)

        out[exp_id] = {
            "wall_ratio": ratio(cur.get("wall_seconds"), prev.get("wall_seconds")),
            "throughput_ratio": ratio(cur.get("throughput"), prev.get("throughput")),
            "metrics_changed": cur.get("digest") != prev.get("digest"),
        }
    return out


def render_history(history: Mapping, *, limit: int = 10) -> str:
    """Human trajectory table: one line per entry, newest last."""
    from repro.util import Table

    suite = history.get("suite", "?")
    entries = history.get("entries", [])[-limit:]
    t = Table(
        ["recorded", "git", "size", "seed", "experiments", "checks", "wall total (s)"],
        title=f"BENCH_{suite} trajectory ({len(entries)} of "
        f"{len(history.get('entries', []))} entries)",
    )
    for entry in entries:
        exps = entry.get("experiments", {})
        ok = sum(1 for e in exps.values() if e.get("checks_passed"))
        stamp = time.strftime("%Y-%m-%d %H:%M", time.localtime(entry.get("recorded_unix", 0)))
        t.add_row(
            [
                stamp,
                entry.get("git") or "-",
                entry.get("size", "?"),
                entry.get("seed", "?"),
                len(exps),
                f"{ok}/{len(exps)}",
                f"{sum(e.get('wall_seconds') or 0.0 for e in exps.values()):.3f}",
            ]
        )
    return t.render()

"""Tiered benchmark gates: correctness, budgets, trajectory.

The harness (:mod:`repro.bench.suites`) produces :class:`ExperimentResult`
rows; this module turns them into gate verdicts:

- **tier A — correctness cross-checks.** Every failed
  :class:`CheckResult` (pair mismatches, lost determinism, broken shape
  invariants) is a violation. Always enforced: a benchmark whose answer
  is wrong has no performance to report.
- **tier B — perf budgets.** Each experiment may declare a
  :class:`Budget`: wall-clock ceilings and throughput floors per size
  class, with a tolerance band absorbing machine-to-machine noise.
- **tier C — trajectory deltas.** The current run is compared against
  the last comparable entry recorded in ``BENCH_<suite>.json``
  (:mod:`repro.bench.history`); wall-clock regressions beyond the band
  and silent changes to deterministic metrics are flagged. Advisory by
  default, enforced under ``suite gate --strict``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "Budget",
    "CheckResult",
    "GateReport",
    "Violation",
    "evaluate_budget",
    "evaluate_tier_a",
    "evaluate_tier_b",
    "evaluate_tier_c",
]

#: tier C band: wall-clock may drift this much over the recorded entry
#: before it counts as a regression (timings on shared CI runners are noisy)
TRAJECTORY_BAND = 0.75


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one tier-A correctness cross-check."""

    name: str
    passed: bool
    detail: str = ""

    def to_record(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass(frozen=True)
class Budget:
    """Per-experiment perf budget (tier B).

    ``wall_seconds`` maps size classes to wall-clock ceilings;
    ``min_throughput`` maps size classes to result-rows-per-second floors.
    A size class absent from a mapping is not gated at that size.
    ``tolerance`` widens both bounds: a wall budget of 10 s with tolerance
    0.25 fails only above 12.5 s.
    """

    wall_seconds: Mapping[str, float] = field(default_factory=dict)
    min_throughput: Mapping[str, float] = field(default_factory=dict)
    tolerance: float = 0.25

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("Budget.tolerance must be >= 0")
        for name, mapping in (
            ("wall_seconds", self.wall_seconds),
            ("min_throughput", self.min_throughput),
        ):
            for size, value in mapping.items():
                if value <= 0:
                    raise ValueError(f"Budget.{name}[{size!r}] must be positive")

    def wall_limit(self, size: str) -> float | None:
        base = self.wall_seconds.get(size)
        return None if base is None else base * (1.0 + self.tolerance)

    def throughput_floor(self, size: str) -> float | None:
        base = self.min_throughput.get(size)
        return None if base is None else base / (1.0 + self.tolerance)


@dataclass(frozen=True)
class Violation:
    tier: str  # "A" | "B" | "C"
    suite_id: str
    exp_id: str
    message: str

    def render(self) -> str:
        return f"[tier {self.tier}] {self.suite_id}/{self.exp_id}: {self.message}"


def evaluate_budget(
    *,
    suite_id: str,
    exp_id: str,
    budget: Budget | None,
    size: str,
    wall_seconds: float,
    throughput: float | None,
) -> list[Violation]:
    """Tier-B verdict for one experiment measurement."""
    if budget is None:
        return []
    out: list[Violation] = []
    limit = budget.wall_limit(size)
    if limit is not None and wall_seconds > limit:
        out.append(
            Violation(
                "B",
                suite_id,
                exp_id,
                f"wall {wall_seconds:.3f}s exceeds budget "
                f"{budget.wall_seconds[size]:.3f}s "
                f"(+{100 * budget.tolerance:.0f}% band -> {limit:.3f}s) at size={size}",
            )
        )
    floor = budget.throughput_floor(size)
    if floor is not None and throughput is not None and throughput < floor:
        out.append(
            Violation(
                "B",
                suite_id,
                exp_id,
                f"throughput {throughput:.1f} rows/s below budget "
                f"{budget.min_throughput[size]:.1f} rows/s "
                f"(-{100 * budget.tolerance:.0f}% band -> {floor:.1f}) at size={size}",
            )
        )
    return out


def evaluate_tier_a(results) -> list[Violation]:
    """Every failed correctness cross-check across the results."""
    out = []
    for res in results:
        for check in res.checks:
            if not check.passed:
                out.append(
                    Violation(
                        "A",
                        res.suite_id,
                        res.exp_id,
                        f"check {check.name!r} failed"
                        + (f": {check.detail}" if check.detail else ""),
                    )
                )
    return out


def evaluate_tier_b(results, size: str) -> list[Violation]:
    out = []
    for res in results:
        out.extend(
            evaluate_budget(
                suite_id=res.suite_id,
                exp_id=res.exp_id,
                budget=res.budget,
                size=size,
                wall_seconds=res.wall_seconds,
                throughput=res.throughput,
            )
        )
    return out


def evaluate_tier_c(
    suite_id: str,
    current: Mapping,
    previous: Mapping | None,
    *,
    band: float = TRAJECTORY_BAND,
) -> list[Violation]:
    """Trajectory verdict: ``current`` vs the last comparable history entry.

    Both arguments are history entries (see :mod:`repro.bench.history`).
    With no comparable ``previous``, there is no trajectory to gate.
    """
    if previous is None:
        return []
    out: list[Violation] = []
    prev_exps: Mapping = previous.get("experiments", {})
    for exp_id, cur in current.get("experiments", {}).items():
        prev = prev_exps.get(exp_id)
        if prev is None:
            continue
        prev_wall = prev.get("wall_seconds") or 0.0
        cur_wall = cur.get("wall_seconds") or 0.0
        if prev_wall > 0 and cur_wall > prev_wall * (1.0 + band):
            out.append(
                Violation(
                    "C",
                    suite_id,
                    exp_id,
                    f"wall {cur_wall:.3f}s regressed {cur_wall / prev_wall:.2f}x "
                    f"over recorded {prev_wall:.3f}s (band {1.0 + band:.2f}x)",
                )
            )
        if prev.get("digest") and cur.get("digest") and prev["digest"] != cur["digest"]:
            out.append(
                Violation(
                    "C",
                    suite_id,
                    exp_id,
                    "deterministic metrics changed vs recorded history "
                    f"({prev['digest'][:12]} -> {cur['digest'][:12]}); "
                    "re-record BENCH history if intentional",
                )
            )
    return out


@dataclass
class GateReport:
    """Aggregated verdict over one or more suites."""

    violations: list[Violation] = field(default_factory=list)
    advisories: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, violations, *, advisory: bool = False) -> None:
        (self.advisories if advisory else self.violations).extend(violations)

    def render(self) -> str:
        lines = []
        if self.violations:
            lines.append(f"GATE FAILED: {len(self.violations)} violation(s)")
            lines += [f"  - {v.render()}" for v in self.violations]
        else:
            lines.append("gate passed: no violations")
        if self.advisories:
            lines.append(f"advisory (tier C, not enforced): {len(self.advisories)}")
            lines += [f"  - {v.render()}" for v in self.advisories]
        return "\n".join(lines)

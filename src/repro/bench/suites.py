"""Declarative benchmark suites: the registry the unified harness executes.

Every benchmark in this repo is a :class:`BenchExperiment` inside a
:class:`BenchSuite`: a workload factory, the runtime variants to compare,
the tier-A correctness cross-checks, and a tier-B perf :class:`Budget`.
One config-driven harness (:mod:`repro.bench.executors`, driven by
``python -m repro.bench suite ...``) executes them all at three size
classes and records ``BENCH_<suite>.json`` trajectories
(:mod:`repro.bench.history`); the scripts under ``benchmarks/`` are thin
standalone shims selecting a suite (and optionally a filter) from this
registry.

Size classes:

- ``tiny`` — CI smoke: seconds per suite, selected ε only, 1 trial;
- ``small`` — developer loop: the old scripts' ``--quick`` scale;
- ``full`` — bench scale (the defaults in
  :mod:`repro.bench.experiments`), where the paper-shape checks are
  enforced.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.bench.gates import Budget, CheckResult

__all__ = [
    "SIZE_CLASSES",
    "SUITES",
    "BenchExperiment",
    "BenchSuite",
    "ExperimentResult",
    "Variant",
    "Workload",
    "get_suite",
    "register_suite",
    "size_at_least",
]

SIZE_CLASSES = ("tiny", "small", "full")
_SIZE_ORDER = {name: i for i, name in enumerate(SIZE_CLASSES)}


def size_at_least(size: str, floor: str) -> bool:
    """True when ``size`` is at or above ``floor`` in the tiny<small<full order."""
    return _SIZE_ORDER[size] >= _SIZE_ORDER[floor]


# ---------------------------------------------------------------------------
# workloads


def _special_generators() -> dict[str, Callable[[int, int], np.ndarray]]:
    from repro.data.adversarial import dense_core_sparse_halo, stride_aliased_hotspots
    from repro.data.synthetic import exponential, uniform

    return {
        "expo2d": lambda n, seed: exponential(n, 2, seed=seed),
        "expo2d_lam2": lambda n, seed: exponential(n, 2, seed=seed, lam=2.0),
        "unif2d": lambda n, seed: uniform(n, 2, seed=seed, low=0.0, high=1.0),
        "stride_aliased": lambda n, seed: stride_aliased_hotspots(n, 2, period=8, seed=seed),
        "dense_core": lambda n, seed: dense_core_sparse_halo(n, 2, seed=seed),
    }


@dataclass(frozen=True)
class Workload:
    """Dataset factory: a named source at per-size-class point counts.

    ``dataset`` is either a :data:`repro.data.CATALOG` name (built through
    :func:`repro.bench.experiments.load_bench_dataset`, inheriting the
    documented density-preserving scaling) or one of the special generator
    keys (``expo2d``, ``unif2d``, ``stride_aliased``, ``dense_core``, ...).
    ``points[size] is None`` means the bench default for catalog datasets.
    ``seed_offset`` decorrelates datasets sharing one base seed.
    """

    dataset: str
    epsilon: float
    points: Mapping[str, int | None]
    seed_offset: int = 0

    def num_points(self, size: str) -> int | None:
        if size not in self.points:
            raise KeyError(f"workload {self.dataset!r} has no size class {size!r}")
        return self.points[size]

    def build(self, size: str, seed: int) -> np.ndarray:
        from repro.bench.experiments import load_bench_dataset

        n = self.num_points(size)
        special = _special_generators()
        if self.dataset in special:
            if n is None:
                raise ValueError(
                    f"special workload {self.dataset!r} needs an explicit size"
                )
            return special[self.dataset](n, seed + self.seed_offset)
        return load_bench_dataset(self.dataset, size=n, seed=seed + self.seed_offset)


@dataclass(frozen=True)
class Variant:
    """One runtime configuration under measurement.

    ``preset`` names an :data:`repro.core.PRESETS` optimization config; the
    remaining knobs parameterize the :class:`repro.runtime.RuntimeConfig`
    the harness builds from it.
    """

    name: str
    preset: str = "gpucalcglobal"
    engine: str = "vectorized"
    num_devices: int = 1
    planner: str = "balanced"
    schedule: str = "dynamic"


@dataclass(frozen=True)
class BenchExperiment:
    """One measured unit: workload x variants + checks + budget.

    ``kind`` selects the executor (see
    :data:`repro.bench.executors.EXECUTORS`): ``model`` and ``ablation``
    drive the analytic performance model, ``engine``/``multigpu``/
    ``resilience``/``serve``/``checkpoint`` drive the real VM/runtime.
    ``checks`` name tier-A cross-checks from the executor's check table;
    kind-intrinsic checks (pair identity, determinism) always run.
    ``params`` carries kind-specific knobs.
    """

    exp_id: str
    title: str
    kind: str
    workload: Workload | None = None
    variants: tuple[Variant, ...] = ()
    checks: tuple[str, ...] = ()
    budget: Budget | None = None
    params: Mapping = field(default_factory=dict)


@dataclass(frozen=True)
class BenchSuite:
    suite_id: str
    title: str
    description: str
    experiments: tuple[BenchExperiment, ...]
    #: suite-level tier-A checks evaluated over all experiment results
    aggregate_checks: tuple[str, ...] = ()

    def select(self, pattern: str | None) -> tuple[BenchExperiment, ...]:
        """Experiments whose id contains any comma-separated pattern."""
        if not pattern:
            return self.experiments
        needles = [p.strip() for p in pattern.split(",") if p.strip()]
        return tuple(
            e for e in self.experiments if any(n in e.exp_id for n in needles)
        )


@dataclass
class ExperimentResult:
    """What one executed experiment reports back.

    ``wall_seconds``/``throughput`` are *measurements* (vary run to run);
    ``metrics`` must be seed-deterministic and JSON-serializable — they
    are digested into the BENCH history and tier-C compares digests.
    """

    suite_id: str
    exp_id: str
    title: str
    wall_seconds: float
    throughput: float | None
    metrics: dict
    checks: list[CheckResult]
    budget: Budget | None = None
    headline: str = ""

    @property
    def checks_passed(self) -> bool:
        return all(c.passed for c in self.checks)


# ---------------------------------------------------------------------------
# registry

SUITES: dict[str, BenchSuite] = {}


def register_suite(suite: BenchSuite) -> BenchSuite:
    if suite.suite_id in SUITES:
        raise ValueError(f"duplicate suite id {suite.suite_id!r}")
    seen = set()
    for exp in suite.experiments:
        if exp.exp_id in seen:
            raise ValueError(f"duplicate experiment id {exp.exp_id!r} in {suite.suite_id}")
        seen.add(exp.exp_id)
    SUITES[suite.suite_id] = suite
    return suite


def get_suite(suite_id: str) -> BenchSuite:
    try:
        return SUITES[suite_id]
    except KeyError:
        raise KeyError(
            f"unknown suite {suite_id!r}; available: {sorted(SUITES)}"
        ) from None


# ---------------------------------------------------------------------------
# suite definitions


def _model_budget(tiny=8.0, small=60.0, full=900.0) -> Budget:
    return Budget(wall_seconds={"tiny": tiny, "small": small, "full": full}, tolerance=0.5)


def _model_exp(exp_id: str, title: str, checks: tuple[str, ...] = (), **params) -> BenchExperiment:
    return BenchExperiment(
        exp_id=exp_id,
        title=title,
        kind="model",
        checks=checks,
        budget=_model_budget(**params.pop("budget", {})),
        params={"experiment": exp_id, **params},
    )


register_suite(
    BenchSuite(
        suite_id="paper",
        title="Paper tables and figures (analytic model)",
        description=(
            "Every Table/Figure experiment from the paper registry, run "
            "through the performance model with result-row cross-checks "
            "and (at full size) the paper's shape and headline-band checks."
        ),
        experiments=(
            _model_exp("table1", "Table I — dataset inventory"),
            _model_exp(
                "fig9",
                "Figure 9 — response time vs eps: cell access patterns",
                checks=("rows_consistent", "rerun_deterministic", "lid_wins_mostly"),
            ),
            _model_exp(
                "table3",
                "Table III — WEE and time: cell access patterns",
                checks=("rows_consistent", "lid_wee_above_unicomp"),
            ),
            _model_exp(
                "fig10",
                "Figure 10 — k=1 vs k=8 response time",
                checks=("rows_consistent", "k8_wins_heavy_expo"),
            ),
            _model_exp(
                "table4",
                "Table IV — WEE and time: k=1 vs k=8",
                checks=("rows_consistent",),
            ),
            _model_exp(
                "fig11",
                "Figure 11 — SORTBYWL and WORKQUEUE response time",
                checks=("rows_consistent", "queue_not_slower_than_sort"),
            ),
            _model_exp(
                "table5",
                "Table V — WORKQUEUE k=8 vs baseline",
                checks=("rows_consistent", "paper_speedup_directions"),
            ),
            _model_exp(
                "fig12",
                "Figure 12 — real-world datasets, combined vs baselines",
                checks=("rows_consistent",),
            ),
            _model_exp(
                "table6",
                "Table VI — WEE and time on real-world datasets",
                checks=("rows_consistent",),
            ),
            _model_exp(
                "fig13",
                "Figure 13 — speedup of the combined optimizations",
                checks=("rows_consistent", "headline_bands"),
            ),
        ),
    )
)


register_suite(
    BenchSuite(
        suite_id="ablations",
        title="Design-choice ablations (analytic model)",
        description=(
            "Beyond-the-paper sweeps: buffer capacity, estimator sampling "
            "rate, warp issue order, warp size, cost-constant sensitivity "
            "and replay fidelity — each with its invariant as a tier-A check."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=exp_id,
                title=title,
                kind="ablation",
                budget=_model_budget(),
                params={"ablation": exp_id.removeprefix("abl_")},
            )
            for exp_id, title in (
                ("abl_buffer", "Ablation — result buffer capacity"),
                ("abl_estimator", "Ablation — estimator sampling rate"),
                ("abl_scheduler", "Ablation — warp issue order in isolation"),
                ("abl_warpsize", "Ablation — warp size sensitivity"),
                ("abl_sensitivity", "Ablation — cost-constant robustness"),
                ("abl_fidelity", "Ablation — replay fidelity (aggregate vs lockstep)"),
            )
        ),
    )
)


_ENGINE_PRESETS = ("gpucalcglobal", "lidunicomp", "sortbywl", "workqueue_k8", "combined")

register_suite(
    BenchSuite(
        suite_id="core",
        title="Core VM engine: vectorized vs interpreted",
        description=(
            "Identical self-joins through both execution engines across "
            "the representative presets; pairs, per-batch cycles and "
            "pipeline times must be bit-identical and the vectorized "
            "engine must not be slower in aggregate."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=f"engine_{name}",
                title=f"Engine equivalence + throughput on {dataset}",
                kind="engine",
                workload=Workload(
                    dataset=dataset,
                    epsilon=eps,
                    points={"tiny": 600, "small": 1500, "full": None},
                ),
                variants=tuple(Variant(name=p, preset=p) for p in _ENGINE_PRESETS),
                budget=Budget(
                    wall_seconds={"tiny": 30.0, "small": 120.0, "full": 1800.0},
                    min_throughput={"tiny": 50_000.0, "small": 100_000.0},
                    tolerance=0.5,
                ),
            )
            for name, dataset, eps in (
                ("expo", "Expo2D2M", 0.01),
                ("unif", "Unif2D2M", 0.4),
            )
        ),
        aggregate_checks=("vectorized_not_slower",),
    )
)


register_suite(
    BenchSuite(
        suite_id="native",
        title="Native array engine vs vectorized VM",
        description=(
            "The fidelity-free array-native backend against the vectorized "
            "VM across the representative presets: canonical pair sets must "
            "be identical on every experiment, and (small and up) the "
            "native engine must hold a geomean >= 3x speedup. At full size "
            "a 5M-point mmap-backed dataset additionally runs end-to-end "
            "through the process-pool shard backend without a resident copy."
        ),
        experiments=(
            *(
                BenchExperiment(
                    exp_id=f"native_{name}",
                    title=f"Native vs vectorized on {dataset}",
                    kind="native",
                    workload=Workload(
                        dataset=dataset,
                        epsilon=eps,
                        points={"tiny": 600, "small": 1500, "full": None},
                    ),
                    variants=tuple(
                        Variant(name=p, preset=p, engine="native")
                        for p in _ENGINE_PRESETS
                    ),
                    budget=Budget(
                        wall_seconds={"tiny": 30.0, "small": 120.0, "full": 1800.0},
                        min_throughput={"tiny": 50_000.0, "small": 100_000.0},
                        tolerance=0.5,
                    ),
                )
                for name, dataset, eps in (
                    ("expo", "Expo2D2M", 0.01),
                    ("unif", "Unif2D2M", 0.4),
                )
            ),
            BenchExperiment(
                exp_id="mmap_process_scale",
                title="5M-point mmap dataset through the process shard pool",
                kind="native_scale",
                budget=Budget(
                    wall_seconds={"tiny": 30.0, "small": 30.0, "full": 1800.0},
                    tolerance=0.5,
                ),
                params={
                    "num_points": 5_000_000,
                    "epsilon": 0.01,
                    "extent": 100.0,
                    "num_devices": 4,
                },
            ),
        ),
        aggregate_checks=("native_not_slower",),
    )
)


register_suite(
    BenchSuite(
        suite_id="multigpu",
        title="Multi-device scaling and shard planning",
        description=(
            "Sharded self-joins over pools of N devices for strided vs "
            "balanced-LPT planners; merged pairs must match the "
            "single-device join and LPT must beat striding on "
            "id-correlated skew."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=f"scaling_{name}",
                title=f"Pool scaling on {name}",
                kind="multigpu",
                workload=workload,
                budget=Budget(
                    wall_seconds={"tiny": 30.0, "small": 90.0, "full": 900.0},
                    tolerance=0.5,
                ),
                params={
                    "pool_sizes": {"tiny": (1, 2, 4), "small": (1, 2, 4), "full": (1, 2, 4, 8)},
                    "check_balanced_beats_strided": name == "stride_aliased",
                },
            )
            for name, workload in (
                (
                    "expo",
                    Workload(
                        dataset="expo2d",
                        epsilon=0.02,
                        points={"tiny": 300, "small": 600, "full": 2000},
                        seed_offset=1,
                    ),
                ),
                (
                    "stride_aliased",
                    Workload(
                        dataset="stride_aliased",
                        epsilon=2.0,
                        points={"tiny": 300, "small": 600, "full": 2000},
                        seed_offset=3,
                    ),
                ),
            )
        ),
    )
)


register_suite(
    BenchSuite(
        suite_id="resilience",
        title="Fault injection: the answer must hold",
        description=(
            "Seeded fault scenarios (device death, stragglers, transients, "
            "forced overflow, all at once) on a 4-device pool; merged pairs "
            "must match the fault-free join and traces must replay per seed."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=f"faults_{name}",
                title=f"Fault battery on {name}",
                kind="resilience",
                workload=workload,
                budget=Budget(
                    wall_seconds={"tiny": 60.0, "small": 180.0, "full": 1200.0},
                    tolerance=0.5,
                ),
            )
            for name, workload in (
                (
                    "expo",
                    Workload(
                        dataset="expo2d",
                        epsilon=0.02,
                        points={"tiny": 250, "small": 400, "full": 1500},
                        seed_offset=1,
                    ),
                ),
                (
                    "dense_core",
                    Workload(
                        dataset="dense_core",
                        epsilon=0.9,
                        points={"tiny": 250, "small": 400, "full": 1500},
                        seed_offset=2,
                    ),
                ),
            )
        ),
    )
)


register_suite(
    BenchSuite(
        suite_id="serve",
        title="Multi-tenant serving throughput",
        description=(
            "JoinService under T concurrent tenants with a mixed "
            "self/similarity workload; every response cross-checked against "
            "the direct Runner, cache hits and fairness spread asserted."
        ),
        experiments=(
            BenchExperiment(
                exp_id="tenants",
                title="Tenant scaling on shared datasets",
                kind="serve",
                workload=Workload(
                    dataset="expo2d",
                    epsilon=0.05,
                    points={"tiny": 250, "small": 400, "full": 1200},
                    seed_offset=1,
                ),
                budget=Budget(
                    wall_seconds={"tiny": 60.0, "small": 180.0, "full": 1200.0},
                    tolerance=0.5,
                ),
                params={
                    "tenant_counts": {"tiny": (1, 4), "small": (1, 4, 16), "full": (1, 4, 16)},
                    "rounds": {"tiny": 2, "small": 2, "full": 4},
                    "epsilon_similarity": 0.06,
                },
            ),
        ),
    )
)


register_suite(
    BenchSuite(
        suite_id="knn",
        title="kNN join: the multi-round expansion driver",
        description=(
            "The kNN-join driver (round r queries at eps0 * growth**r over "
            "the residual) on skewed and uniform data: neighbors must match "
            "a scipy cKDTree oracle, be bit-identical across all three "
            "engines and on the device pool, and survive a kill at every "
            "dispatch ordinal with a journal resume; native must not lose "
            "to the vectorized VM at scale."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=f"knn_{name}",
                title=f"kNN driver on {name}",
                kind="knn",
                workload=Workload(
                    dataset=dataset,
                    epsilon=eps0,
                    points={"tiny": 250, "small": 500, "full": 1500},
                    seed_offset=offset,
                ),
                budget=Budget(
                    wall_seconds={"tiny": 60.0, "small": 180.0, "full": 1200.0},
                    tolerance=0.5,
                ),
                params={
                    "k": {"tiny": 4, "small": 8, "full": 8},
                    "max_kill_points": 24,
                },
            )
            for name, dataset, eps0, offset in (
                ("expo", "expo2d", 0.05, 1),
                ("unif", "unif2d", 0.05, 2),
            )
        ),
    )
)


register_suite(
    BenchSuite(
        suite_id="checkpoint",
        title="Durable checkpoint overhead + crash/resume identity",
        description=(
            "Journaling overhead vs the plain pooled join, and a kill at "
            "every shard k resumed from the journal — pairs and trace "
            "signature must be bit-identical to the uninterrupted run."
        ),
        experiments=tuple(
            BenchExperiment(
                exp_id=f"crash_resume_{kind}",
                title=f"Crash/resume drill ({kind} join)",
                kind="checkpoint",
                workload=Workload(
                    dataset="expo2d_lam2",
                    epsilon=0.08,
                    points={"tiny": 250, "small": 400, "full": 1500},
                ),
                budget=Budget(
                    wall_seconds={"tiny": 60.0, "small": 180.0, "full": 1200.0},
                    tolerance=0.5,
                ),
                params={
                    "join_kind": kind,
                    "query_fraction": 0.35,
                },
            )
            for kind in ("self", "bipartite")
        ),
    )
)

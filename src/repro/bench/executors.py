"""Executors: run a declarative :class:`BenchExperiment` and measure it.

One executor per experiment ``kind``. Each returns an
:class:`~repro.bench.suites.ExperimentResult` whose ``metrics`` are
seed-deterministic (digested into ``BENCH_<suite>.json`` history) and
whose ``checks`` carry the tier-A correctness verdicts — both the
kind-intrinsic ones (pair identity, replay determinism) and the named
shape checks the spec opts into. Shape checks that need statistics only
present at larger scales declare a minimum size class and report
themselves as skipped below it.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import sys
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bench.gates import CheckResult
from repro.bench.suites import (
    BenchExperiment,
    BenchSuite,
    ExperimentResult,
    size_at_least,
)

__all__ = ["EXECUTORS", "RunContext", "SuiteRun", "run_suite"]

#: default trials (timing repetitions / model perturbation trials) per size
DEFAULT_TRIALS = {"tiny": 1, "small": 2, "full": 3}

#: model-suite dataset sizes per class (None = bench default scale)
MODEL_POINTS = {"tiny": 400, "small": 2000, "full": None}


@dataclass
class RunContext:
    size: str = "tiny"
    seed: int = 0
    trials: int | None = None
    progress: Callable[[str], None] | None = None

    def effective_trials(self) -> int:
        return self.trials if self.trials is not None else DEFAULT_TRIALS[self.size]

    def note(self, msg: str) -> None:
        if self.progress is not None:
            self.progress(msg)


@dataclass
class SuiteRun:
    suite: BenchSuite
    results: list[ExperimentResult]
    suite_checks: list[CheckResult] = field(default_factory=list)

    @property
    def checks_passed(self) -> bool:
        return all(r.checks_passed for r in self.results) and all(
            c.passed for c in self.suite_checks
        )

    def render_summary(self) -> str:
        from repro.util import Table

        t = Table(
            ["experiment", "wall (s)", "rows/s", "checks", "headline"],
            title=f"suite {self.suite.suite_id} — {self.suite.title}",
        )
        for r in self.results:
            ok = sum(1 for c in r.checks if c.passed)
            t.add_row(
                [
                    r.exp_id,
                    f"{r.wall_seconds:.3f}",
                    "-" if r.throughput is None else f"{r.throughput:,.0f}",
                    f"{ok}/{len(r.checks)}" + ("" if r.checks_passed else " FAIL"),
                    r.headline,
                ]
            )
        lines = [t.render()]
        for c in self.suite_checks:
            status = "ok" if c.passed else "FAIL"
            lines.append(f"  suite check {c.name}: {status}" + (f" ({c.detail})" if c.detail else ""))
        return "\n".join(lines)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time; returns (last_result, best_seconds)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _skipped(name: str, floor: str) -> CheckResult:
    return CheckResult(name, True, f"skipped (needs --size {floor} or larger)")


def _pairs_checksum(pairs: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(pairs, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# model experiments (paper tables/figures through the performance model)


def _times_by_config(report, dataset: str, eps: float) -> dict[str, float]:
    return {
        r.config: r.seconds
        for r in report.rows
        if r.dataset == dataset and r.epsilon == float(eps)
    }


def _check_rows_consistent(report, spec, ctx) -> CheckResult:
    """All GPU configs of one (dataset, eps) cell must report identical
    result rows — they compute the same join under different schedules."""
    cells: dict[tuple, dict[str, int]] = {}
    for r in report.rows:
        if r.config == "superego":
            continue
        cells.setdefault((r.dataset, r.epsilon), {})[r.config] = r.result_rows
    bad = [
        f"{ds} eps={eps}: {rows}"
        for (ds, eps), rows in cells.items()
        if len(set(rows.values())) > 1
    ]
    return CheckResult(
        "rows_consistent",
        not bad,
        "; ".join(bad) if bad else f"{len(cells)} cells agree across configs",
    )


def _check_rerun_deterministic(report, spec, ctx, *, rerun) -> CheckResult:
    replay = rerun()
    same = [
        (a.dataset, a.epsilon, a.config, a.seconds, a.wee_percent, a.result_rows)
        for a in report.rows
    ] == [
        (b.dataset, b.epsilon, b.config, b.seconds, b.wee_percent, b.result_rows)
        for b in replay.rows
    ]
    return CheckResult(
        "rerun_deterministic",
        same,
        "" if same else "identical seed produced different rows",
    )


def _check_lid_wins_mostly(report, spec, ctx) -> CheckResult:
    wins = cells = 0
    for ds in spec.datasets:
        for eps in spec.sweep(ds, selected_only=False):
            t = _times_by_config(report, ds, eps)
            if "lidunicomp" not in t or "gpucalcglobal" not in t:
                continue
            cells += 1
            if t["lidunicomp"] <= t["gpucalcglobal"] * 1.02:
                wins += 1
    ok = cells > 0 and wins >= cells * 0.75
    return CheckResult(
        "lid_wins_mostly", ok, f"LID-UNICOMP wins {wins}/{cells} cells (need >= 75%)"
    )


def _check_lid_wee_above_unicomp(report, spec, ctx) -> CheckResult:
    bad = []
    cells: dict[tuple, dict[str, float]] = {}
    for r in report.rows:
        cells.setdefault((r.dataset, r.epsilon), {})[r.config] = r.wee_percent
    for cell, wee in cells.items():
        if {"lidunicomp", "unicomp"} <= set(wee) and not wee["lidunicomp"] > wee["unicomp"]:
            bad.append(f"{cell}")
    return CheckResult("lid_wee_above_unicomp", not bad, "; ".join(bad))


def _check_k8_wins_heavy_expo(report, spec, ctx) -> CheckResult:
    heavy_eps = spec.eps["Expo2D2M"][-1]
    t = _times_by_config(report, "Expo2D2M", heavy_eps)
    ok = t["k8"] < t["gpucalcglobal"]
    return CheckResult(
        "k8_wins_heavy_expo",
        ok,
        f"k8 {t['k8']:.4g}s vs baseline {t['gpucalcglobal']:.4g}s at eps={heavy_eps}",
    )


def _check_queue_not_slower_than_sort(report, spec, ctx) -> CheckResult:
    bad = []
    for ds in spec.datasets:
        for eps in spec.sweep(ds, selected_only=False):
            t = _times_by_config(report, ds, eps)
            if {"workqueue", "sortbywl"} <= set(t) and t["workqueue"] > t["sortbywl"] * 1.05:
                bad.append(f"{ds} eps={eps}")
    return CheckResult("queue_not_slower_than_sort", not bad, "; ".join(bad))


def _check_paper_speedup_directions(report, spec, ctx) -> CheckResult:
    from repro.bench.paper_reference import PAPER_TABLE5

    bad = []
    for cell in PAPER_TABLE5:
        eps = spec.selected_eps[cell.dataset]
        t = _times_by_config(report, cell.dataset, eps)
        measured = t["gpucalcglobal"] / t["workqueue_k8"]
        if cell.speedup > 1.1 and measured <= 1.0:
            bad.append(f"{cell.dataset}: paper gained {cell.speedup:.2f}x, measured {measured:.2f}x")
        if cell.speedup <= 1.1 and measured >= 2.0:
            bad.append(f"{cell.dataset}: paper parity, measured {measured:.2f}x")
    return CheckResult("paper_speedup_directions", not bad, "; ".join(bad))


def _check_headline_bands(report, spec, ctx) -> CheckResult:
    stats = {}
    for base in ("superego", "gpucalcglobal"):
        sp = report.speedups(base)
        stats[base] = np.array([v["combined"] for v in sp.values() if "combined" in v])
    ok = (
        stats["superego"].mean() > 1.3
        and stats["gpucalcglobal"].mean() > 1.2
        and stats["gpucalcglobal"].max() > 2.0
    )
    detail = (
        f"vs superego avg {stats['superego'].mean():.2f}x; "
        f"vs gpucalcglobal avg {stats['gpucalcglobal'].mean():.2f}x "
        f"max {stats['gpucalcglobal'].max():.2f}x"
    )
    return CheckResult("headline_bands", ok, detail)


#: named model checks: name -> (minimum size class, fn)
MODEL_CHECKS: dict[str, tuple[str, Callable]] = {
    "rows_consistent": ("tiny", _check_rows_consistent),
    "rerun_deterministic": ("tiny", _check_rerun_deterministic),
    "lid_wins_mostly": ("full", _check_lid_wins_mostly),
    "lid_wee_above_unicomp": ("full", _check_lid_wee_above_unicomp),
    "k8_wins_heavy_expo": ("full", _check_k8_wins_heavy_expo),
    "queue_not_slower_than_sort": ("full", _check_queue_not_slower_than_sort),
    "paper_speedup_directions": ("full", _check_paper_speedup_directions),
    "headline_bands": ("full", _check_headline_bands),
}


def _model_metrics(report) -> dict:
    per_config: dict[str, dict] = {}
    for r in report.rows:
        agg = per_config.setdefault(
            r.config, {"cells": 0, "log_seconds": 0.0, "wee_sum": 0.0, "result_rows": 0}
        )
        agg["cells"] += 1
        agg["log_seconds"] += math.log(max(r.seconds, 1e-30))
        agg["wee_sum"] += 0.0 if math.isnan(r.wee_percent) else r.wee_percent
        agg["result_rows"] += r.result_rows
    return {
        "num_rows": len(report.rows),
        "per_config": {
            name: {
                "cells": a["cells"],
                "geomean_seconds": round(math.exp(a["log_seconds"] / a["cells"]), 9),
                "mean_wee_percent": round(a["wee_sum"] / a["cells"], 3),
                "result_rows": a["result_rows"],
            }
            for name, a in sorted(per_config.items())
        },
    }


def _run_table1(suite, exp, ctx) -> ExperimentResult:
    from repro.bench.experiments import DEFAULT_SIZES, bench_size
    from repro.data import CATALOG

    t0 = time.perf_counter()
    inventory = {
        name: {
            "ndim": CATALOG[name].ndim,
            "paper_size": CATALOG[name].paper_size,
            "bench_size": bench_size(name),
            "distribution": CATALOG[name].distribution,
        }
        for name in sorted(DEFAULT_SIZES)
    }
    wall = time.perf_counter() - t0
    checks = [
        CheckResult(
            "inventory_complete",
            len(inventory) == len(DEFAULT_SIZES),
            f"{len(inventory)} datasets",
        )
    ]
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=None,
        metrics={"datasets": inventory},
        checks=checks,
        budget=exp.budget,
        headline=f"{len(inventory)} datasets",
    )


def run_model(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    if exp.params["experiment"] == "table1":
        return _run_table1(suite, exp, ctx)

    from repro.bench.experiments import EXPERIMENTS
    from repro.bench.runner import run_experiment

    spec = EXPERIMENTS[exp.params["experiment"]]
    size_pts = MODEL_POINTS[ctx.size]
    selected_only = ctx.size == "tiny"

    def run_once():
        return run_experiment(
            spec,
            size=size_pts,
            seed=ctx.seed,
            trials=ctx.effective_trials(),
            selected_only=selected_only,
        )

    report, wall = _timed(run_once, 1)
    checks: list[CheckResult] = []
    for name in exp.checks:
        floor, fn = MODEL_CHECKS[name]
        if not size_at_least(ctx.size, floor):
            checks.append(_skipped(name, floor))
        elif name == "rerun_deterministic":
            checks.append(fn(report, spec, ctx, rerun=run_once))
        else:
            checks.append(fn(report, spec, ctx))
    metrics = _model_metrics(report)
    total_rows = sum(a["result_rows"] for a in metrics["per_config"].values())
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=total_rows / wall if wall > 0 else None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"{metrics['num_rows']} cells",
    )


# ---------------------------------------------------------------------------
# ablation experiments (custom model sweeps)


def _ablation_profile(ctx, dataset="Expo2D2M", eps=0.01):
    from repro.bench.experiments import bench_device, load_bench_dataset
    from repro.perfmodel import PerformanceModel

    model = PerformanceModel(device=bench_device(), seed=ctx.seed)
    points = load_bench_dataset(dataset, size=MODEL_POINTS[ctx.size], seed=ctx.seed)
    profile = model.profile(points, eps)
    return model, profile


def _abl_buffer(ctx) -> tuple[dict, list[CheckResult]]:
    from repro.core import PRESETS

    model, profile = _ablation_profile(ctx)
    capacities = (50_000, 200_000, 2_000_000, 20_000_000)
    batches = {}
    for cap in capacities:
        run = model.estimate(profile, PRESETS["workqueue"].with_(batch_result_capacity=cap))
        batches[cap] = run.num_batches
    counts = [batches[c] for c in capacities]
    ok = counts == sorted(counts, reverse=True)
    return (
        {"batches_by_capacity": {str(c): b for c, b in batches.items()}},
        [CheckResult("buffer_batches_monotone", ok, f"batch counts {counts}")],
    )


def _abl_estimator(ctx) -> tuple[dict, list[CheckResult]]:
    _, profile = _ablation_profile(ctx)
    rates = (0.01, 0.05, 0.2) if ctx.size == "tiny" else (0.001, 0.01, 0.05, 0.2)
    true = profile.total_result_size()
    rows = {}
    head_ok, strided_ok = [], []
    for rate in rates:
        s = profile.estimate_strided(rate)
        h = profile.estimate_head(rate, "full")
        rows[str(rate)] = {"strided": int(s), "head": int(h)}
        head_ok.append(h >= true)
        strided_ok.append(0.3 * true <= s <= 3.0 * true)
    checks = [
        CheckResult("head_estimator_overestimates", all(head_ok), f"true |R|={true}"),
    ]
    if size_at_least(ctx.size, "small"):
        checks.append(
            CheckResult(
                "strided_estimator_in_band",
                all(strided_ok),
                f"rates {rates}, true |R|={true}",
            )
        )
    else:
        checks.append(_skipped("strided_estimator_in_band", "small"))
    return {"true_result_size": int(true), "estimates": rows}, checks


def _abl_scheduler(ctx) -> tuple[dict, list[CheckResult]]:
    from repro.bench.experiments import bench_device
    from repro.perfmodel.warps import model_batch_warps
    from repro.simt import CostParams, makespan

    _, profile = _ablation_profile(ctx)
    costs = CostParams()
    m = model_batch_warps(
        profile,
        profile.sorted_order("full"),
        k=1,
        pattern="full",
        costs=costs,
        work_queue=False,
    )
    durations = m.durations_with_launch(costs)
    slots = bench_device().warp_slots
    spans = {
        order: makespan(durations, slots, order=order, seed=1).makespan_cycles
        for order in ("fifo", "random", "workload_desc")
    }
    checks = [
        CheckResult(
            "lpt_not_above_random",
            spans["workload_desc"] <= spans["random"],
            f"spans {spans}",
        ),
        CheckResult("fifo_not_above_random", spans["fifo"] <= spans["random"], ""),
    ]
    if size_at_least(ctx.size, "full"):
        checks.append(
            CheckResult(
                "sorted_fifo_matches_lpt",
                bool(np.isclose(spans["workload_desc"], spans["fifo"], rtol=0.02)),
                f"fifo {spans['fifo']:.4g} vs lpt {spans['workload_desc']:.4g}",
            )
        )
    else:
        checks.append(_skipped("sorted_fifo_matches_lpt", "full"))
    return {"makespan_cycles": {k: float(v) for k, v in spans.items()}}, checks


def _abl_warpsize(ctx) -> tuple[dict, list[CheckResult]]:
    from repro.core import PRESETS
    from repro.perfmodel import PerformanceModel
    from repro.simt import DeviceSpec

    _, profile = _ablation_profile(ctx)
    gaps = {}
    for ws in (1, 8, 32, 64):
        device = DeviceSpec(
            name=f"sim-warp{ws}",
            warp_size=ws,
            num_sms=14,
            warps_per_sm_slot=max(1, 64 // ws),
        )
        model = PerformanceModel(device=device, seed=ctx.seed)
        base = model.estimate(
            profile, PRESETS["gpucalcglobal"].with_(batch_result_capacity=2_000_000)
        )
        queue = model.estimate(
            profile, PRESETS["workqueue"].with_(batch_result_capacity=2_000_000)
        )
        gaps[ws] = base.kernel_seconds / queue.kernel_seconds
    if size_at_least(ctx.size, "full"):
        checks = [
            CheckResult(
                "wide_warps_amplify_gap",
                gaps[32] > gaps[1],
                f"gap ws=32 {gaps[32]:.3f}x vs ws=1 {gaps[1]:.3f}x",
            )
        ]
    else:
        checks = [_skipped("wide_warps_amplify_gap", "full")]
    return {"baseline_over_queue_gap": {str(k): round(v, 6) for k, v in gaps.items()}}, checks


def _abl_sensitivity(ctx) -> tuple[dict, list[CheckResult]]:
    from repro.core import PRESETS
    from repro.perfmodel.sensitivity import sweep_cost_sensitivity

    model, profile = _ablation_profile(ctx)
    report = sweep_cost_sensitivity(
        profile,
        {name: PRESETS[name] for name in ("gpucalcglobal", "lidunicomp", "workqueue")},
        device=model.device,
    )
    metrics = {
        "baseline_order": list(report.baseline_order),
        "cells_checked": report.cells_checked,
        "flips": len(report.flips),
    }
    if size_at_least(ctx.size, "small"):
        checks = [
            CheckResult(
                "orderings_robust_to_costs",
                report.is_robust and report.baseline_order[-1] == "gpucalcglobal",
                f"{len(report.flips)} flips over {report.cells_checked} cells",
            )
        ]
    else:
        checks = [_skipped("orderings_robust_to_costs", "small")]
    return metrics, checks


def _abl_fidelity(ctx) -> tuple[dict, list[CheckResult]]:
    from repro.bench.experiments import bench_device
    from repro.core import PRESETS, SelfJoin

    n = {"tiny": 600, "small": 1500, "full": 3000}[ctx.size]
    rng = np.random.default_rng(ctx.seed + 12)
    points = np.concatenate(
        [rng.normal(1.2, 0.15, (n // 2, 2)), rng.uniform(0, 6, (n // 2, 2))]
    )
    times = {}
    for preset in ("gpucalcglobal", "workqueue"):
        for mode in ("aggregate", "lockstep"):
            res = SelfJoin(
                PRESETS[preset], device=bench_device(), seed=3, replay_mode=mode
            ).execute(points, 0.3)
            times[(preset, mode)] = res.kernel_seconds
    checks = [
        CheckResult(
            "lockstep_upper_bounds_aggregate",
            all(
                times[(p, "lockstep")] >= times[(p, "aggregate")]
                for p in ("gpucalcglobal", "workqueue")
            ),
            "",
        ),
    ]
    # at tiny scale the skewed core is too small for the queue to pay off
    if size_at_least(ctx.size, "small"):
        checks.append(
            CheckResult(
                "queue_wins_under_both_fidelities",
                all(
                    times[("workqueue", m)] < times[("gpucalcglobal", m)]
                    for m in ("aggregate", "lockstep")
                ),
                "",
            )
        )
    else:
        checks.append(_skipped("queue_wins_under_both_fidelities", "small"))
    metrics = {
        "kernel_seconds": {f"{p}/{m}": times[(p, m)] for p, m in times},
    }
    return metrics, checks


ABLATIONS = {
    "buffer": _abl_buffer,
    "estimator": _abl_estimator,
    "scheduler": _abl_scheduler,
    "warpsize": _abl_warpsize,
    "sensitivity": _abl_sensitivity,
    "fidelity": _abl_fidelity,
}


def run_ablation(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    fn = ABLATIONS[exp.params["ablation"]]
    (metrics, checks), wall = _timed(lambda: fn(ctx), 1)
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"{sum(c.passed for c in checks)}/{len(checks)} invariants",
    )


# ---------------------------------------------------------------------------
# engine experiments (vectorized vs interpreted VM)


def run_engine(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.core import SelfJoin
    from repro.core.config import PRESETS
    from repro.grid import GridIndex
    from repro.runtime import RuntimeConfig

    points = exp.workload.build(ctx.size, ctx.seed)
    index = GridIndex(points, exp.workload.epsilon)
    reps = ctx.effective_trials()

    checks: list[CheckResult] = []
    metrics: dict = {"num_points": len(points), "presets": {}}
    speedups = []
    total_pairs = 0
    vector_seconds = 0.0
    wall_t0 = time.perf_counter()
    for variant in exp.variants:
        cfg = PRESETS[variant.preset]
        timings: dict[str, float] = {}
        results = {}
        for engine in ("interpreted", "vectorized"):
            join = SelfJoin(
                runtime=RuntimeConfig(optimization=cfg, seed=ctx.seed, engine=engine)
            )
            results[engine], timings[engine] = _timed(
                lambda j=join: j.execute_on_index(index), reps
            )
        a, b = results["interpreted"], results["vectorized"]
        problems = []
        if not np.array_equal(a.pairs, b.pairs):
            problems.append("pair mismatch in buffer order")
        if len(a.batch_stats) != len(b.batch_stats):
            problems.append("batch count mismatch")
        else:
            for i, (sa, sb) in enumerate(zip(a.batch_stats, b.batch_stats)):
                if (sa.cycles, sa.seconds, sa.warp_execution_efficiency) != (
                    sb.cycles,
                    sb.seconds,
                    sb.warp_execution_efficiency,
                ):
                    problems.append(f"batch {i} metric mismatch")
                    break
        if a.total_seconds != b.total_seconds:
            problems.append("pipeline time mismatch")
        checks.append(
            CheckResult(
                f"engines_identical[{variant.preset}]", not problems, "; ".join(problems)
            )
        )
        speedup = timings["interpreted"] / max(timings["vectorized"], 1e-9)
        speedups.append(speedup)
        total_pairs += len(b.pairs)
        vector_seconds += timings["vectorized"]
        metrics["presets"][variant.preset] = {
            "num_pairs": int(len(b.pairs)),
            "num_batches": len(b.batch_stats),
            "checksum": _pairs_checksum(b.pairs),
        }
        ctx.note(
            f"{exp.exp_id}: {variant.preset} {len(b.pairs)} pairs, "
            f"speedup {speedup:.1f}x"
        )
    wall = time.perf_counter() - wall_t0

    geomean = float(np.exp(np.log(np.maximum(speedups, 1e-12)).mean()))
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=total_pairs / vector_seconds if vector_seconds > 0 else None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"geomean speedup {geomean:.1f}x",
    )


def _agg_vectorized_not_slower(results: list[ExperimentResult]) -> CheckResult:
    speedups = []
    for r in results:
        head = r.headline
        if head.startswith("geomean speedup"):
            speedups.append(float(head.split()[2].rstrip("x")))
    geomean = float(np.exp(np.log(np.maximum(speedups, 1e-12)).mean())) if speedups else 0.0
    return CheckResult(
        "vectorized_not_slower",
        geomean > 1.0,
        f"suite geomean {geomean:.2f}x over {len(speedups)} experiments",
    )


def _agg_native_not_slower(results: list[ExperimentResult]) -> CheckResult:
    speedups = []
    for r in results:
        head = r.headline
        if head.startswith("geomean speedup"):
            speedups.append(float(head.split()[2].rstrip("x")))
    geomean = float(np.exp(np.log(np.maximum(speedups, 1e-12)).mean())) if speedups else 0.0
    return CheckResult(
        "native_not_slower",
        geomean > 1.0,
        f"suite geomean {geomean:.2f}x over {len(speedups)} experiments",
    )


AGGREGATE_CHECKS = {
    "vectorized_not_slower": _agg_vectorized_not_slower,
    "native_not_slower": _agg_native_not_slower,
}


# ---------------------------------------------------------------------------
# native engine experiments (fidelity-free array backend vs vectorized VM)


def run_native(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.core import SelfJoin
    from repro.core.config import PRESETS
    from repro.grid import GridIndex
    from repro.runtime import RuntimeConfig

    points = exp.workload.build(ctx.size, ctx.seed)
    index = GridIndex(points, exp.workload.epsilon)
    reps = ctx.effective_trials()

    checks: list[CheckResult] = []
    metrics: dict = {"num_points": len(points), "presets": {}}
    speedups = []
    total_pairs = 0
    native_seconds = 0.0
    wall_t0 = time.perf_counter()
    for variant in exp.variants:
        cfg = PRESETS[variant.preset]
        timings: dict[str, float] = {}
        results = {}
        for engine in ("vectorized", "native"):
            join = SelfJoin(
                runtime=RuntimeConfig(optimization=cfg, seed=ctx.seed, engine=engine)
            )
            results[engine], timings[engine] = _timed(
                lambda j=join: j.execute_on_index(index), reps
            )
        vec, nat = results["vectorized"], results["native"]
        problems = []
        if not np.array_equal(nat.canonical_pairs(), vec.canonical_pairs()):
            problems.append("canonical pair sets diverge")
        if nat.fidelity != "none":
            problems.append(f"native fidelity {nat.fidelity!r} != 'none'")
        if vec.fidelity != "simulated":
            problems.append(f"vectorized fidelity {vec.fidelity!r} != 'simulated'")
        checks.append(
            CheckResult(
                f"pair_set_identical[{variant.preset}]", not problems, "; ".join(problems)
            )
        )
        speedup = timings["vectorized"] / max(timings["native"], 1e-9)
        speedups.append(speedup)
        total_pairs += len(nat.pairs)
        native_seconds += timings["native"]
        metrics["presets"][variant.preset] = {
            "num_pairs": int(len(nat.pairs)),
            "checksum": _pairs_checksum(nat.canonical_pairs()),
        }
        ctx.note(
            f"{exp.exp_id}: {variant.preset} {len(nat.pairs)} pairs, "
            f"native speedup {speedup:.1f}x"
        )
    wall = time.perf_counter() - wall_t0

    geomean = float(np.exp(np.log(np.maximum(speedups, 1e-12)).mean()))
    # timing-based, so only gated where the workload is big enough for the
    # array passes to dominate the fixed per-call overhead
    if size_at_least(ctx.size, "small"):
        checks.append(
            CheckResult(
                "native_geomean_3x",
                geomean >= 3.0,
                f"geomean {geomean:.2f}x over vectorized (need >= 3x)",
            )
        )
    else:
        checks.append(_skipped("native_geomean_3x", "small"))
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=total_pairs / native_seconds if native_seconds > 0 else None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"geomean speedup {geomean:.1f}x",
    )


def run_native_scale(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    """End-to-end out-of-core drill: an ``.npy``-backed mmap dataset joined
    with ``engine="native"`` over process-pool shards. Only meaningful at
    bench scale, so it self-reports as skipped below ``full``."""
    if not size_at_least(ctx.size, "full"):
        return ExperimentResult(
            suite_id=suite.suite_id,
            exp_id=exp.exp_id,
            title=exp.title,
            wall_seconds=0.0,
            throughput=None,
            metrics={"skipped": True},
            checks=[_skipped("mmap_process_scale", "full")],
            budget=exp.budget,
            headline="skipped (full only)",
        )

    from repro.core.config import PRESETS
    from repro.data.synthetic import uniform
    from repro.grid import GridIndex
    from repro.io import load_dataset, save_dataset
    from repro.runtime import Runner, RuntimeConfig, ShardingConfig, compile_self_join

    n = int(exp.params["num_points"])
    eps = float(exp.params["epsilon"])
    extent = float(exp.params["extent"])
    num_devices = int(exp.params["num_devices"])

    wall_t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="native-scale-") as tmp:
        path = f"{tmp}/points.npy"
        save_dataset(path, uniform(n, 2, seed=ctx.seed, low=0.0, high=extent))
        points = load_dataset(path, mmap=True)
        index = GridIndex(points, eps)
        ctx.note(f"{exp.exp_id}: grid built over {n} mmap-backed points")
        runtime = RuntimeConfig(
            optimization=PRESETS["sortbywl"],
            engine="native",
            sharding=ShardingConfig(num_devices=num_devices, workers="process"),
            seed=ctx.seed,
        )
        result = Runner().run(compile_self_join(index, runtime))
        # the grid must keep addressing the map, not a resident copy
        base = index.points
        while base is not None and not isinstance(base, np.memmap):
            base = getattr(base, "base", None)
        mapped = isinstance(base, np.memmap)
    wall = time.perf_counter() - wall_t0

    checks = [
        CheckResult(
            "mmap_process_scale",
            result.num_pairs > 0 and result.fidelity == "none",
            f"{n} points -> {result.num_pairs} pairs "
            f"across {num_devices} process shards",
        ),
        CheckResult(
            "points_stay_mapped",
            mapped,
            "" if mapped else "grid points lost their mmap backing",
        ),
    ]
    ctx.note(f"{exp.exp_id}: {result.num_pairs} pairs in {wall:.1f}s")
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=result.num_pairs / wall if wall > 0 else None,
        metrics={
            "num_points": n,
            "num_devices": num_devices,
            "num_pairs": int(result.num_pairs),
        },
        checks=checks,
        budget=exp.budget,
        headline=f"{n / 1e6:.0f}M points, {result.num_pairs} pairs",
    )


# ---------------------------------------------------------------------------
# multigpu experiments


def run_multigpu(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.core import OptimizationConfig, SelfJoin
    from repro.multigpu import SHARD_PLANNERS, DevicePool, MultiGpuSelfJoin
    from repro.simt import DeviceSpec

    device = DeviceSpec(name="sim-small", num_sms=4, warps_per_sm_slot=2)
    config = OptimizationConfig(pattern="lidunicomp", work_queue=True, k=2)
    points = exp.workload.build(ctx.size, ctx.seed)
    eps = exp.workload.epsilon
    pool_sizes = exp.params["pool_sizes"][ctx.size]

    wall_t0 = time.perf_counter()
    reference = SelfJoin(config, device=device, seed=ctx.seed).execute(points, eps)
    ref_pairs = reference.sorted_pairs()

    checks: list[CheckResult] = []
    dee: dict[str, dict] = {}
    mismatches = []
    for n in pool_sizes:
        pool = DevicePool(n, spec=device, seed=ctx.seed)
        for planner in SHARD_PLANNERS:
            run = MultiGpuSelfJoin(
                config,
                pool=pool,
                planner=planner,
                schedule="dynamic",
                shards_per_device=2,
                seed=ctx.seed,
            ).execute(points, eps)
            if not np.array_equal(run.sorted_pairs(), ref_pairs):
                mismatches.append(f"N={n} {planner}")
            dee[f"N{n}/{planner}"] = {
                "dee_percent": round(run.device_execution_efficiency * 100, 3),
                "makespan_seconds": run.makespan_seconds,
            }
            ctx.note(f"{exp.exp_id}: N={n} {planner} ok")
    wall = time.perf_counter() - wall_t0

    checks.append(
        CheckResult(
            "merged_pairs_match_single_device",
            not mismatches,
            "; ".join(mismatches) if mismatches else f"{len(dee)} runs identical",
        )
    )
    if exp.params.get("check_balanced_beats_strided"):
        bad = [
            f"N={n}"
            for n in pool_sizes
            if n > 1
            and not dee[f"N{n}/balanced"]["dee_percent"] > dee[f"N{n}/strided"]["dee_percent"]
        ]
        checks.append(
            CheckResult(
                "balanced_beats_strided_dee",
                not bad,
                "; ".join(bad) if bad else "LPT above striding at every N>1",
            )
        )
    makespan1 = dee.get(f"N{pool_sizes[0]}/balanced", {}).get("makespan_seconds")
    makespanN = dee.get(f"N{pool_sizes[-1]}/balanced", {}).get("makespan_seconds")
    headline = (
        f"N={pool_sizes[-1]} speedup {makespan1 / makespanN:.2f}x"
        if makespan1 and makespanN
        else ""
    )
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=None,
        metrics={"num_points": len(points), "num_pairs": int(len(ref_pairs)), "runs": dee},
        checks=checks,
        budget=exp.budget,
        headline=headline,
    )


# ---------------------------------------------------------------------------
# resilience experiments


def run_resilience(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.core import OptimizationConfig, SelfJoin
    from repro.multigpu import MultiGpuSelfJoin
    from repro.resilience import (
        DeviceFailure,
        FaultPlan,
        ForcedOverflow,
        RecoveryPolicy,
        Straggler,
        TransientFaults,
    )
    from repro.runtime import RuntimeConfig, ShardingConfig
    from repro.simt import DeviceSpec

    device = DeviceSpec(name="sim-small", num_sms=4, warps_per_sm_slot=2)
    config = OptimizationConfig(pattern="lidunicomp", work_queue=True, k=2)
    num_devices = 4
    seed = ctx.seed
    scenarios = {
        "fault_free": FaultPlan(seed=seed),
        "kill_one_mid_run": FaultPlan(
            seed=seed, failures=[DeviceFailure(device_id=1, at_shard=1)]
        ),
        "straggler_6x": FaultPlan(
            seed=seed, stragglers=[Straggler(device_id=3, slowdown=6.0)]
        ),
        "flaky_device": FaultPlan(
            seed=seed,
            transients=[TransientFaults(device_id=2, probability=0.7, max_failures=3)],
        ),
        "forced_overflow": FaultPlan(
            seed=seed,
            overflows=[ForcedOverflow(device_id=0, times=2, clamp_capacity=32)],
        ),
        "everything_at_once": FaultPlan(
            seed=seed,
            failures=[DeviceFailure(device_id=3, at_shard=1)],
            stragglers=[Straggler(device_id=2, slowdown=4.0)],
            transients=[TransientFaults(device_id=1, probability=0.5, max_failures=2)],
            overflows=[ForcedOverflow(device_id=0, times=1, clamp_capacity=64)],
        ),
    }

    points = exp.workload.build(ctx.size, ctx.seed)
    eps = exp.workload.epsilon
    wall_t0 = time.perf_counter()
    reference = SelfJoin(config, device=device, seed=seed).execute(points, eps)
    ref_pairs = reference.sorted_pairs()

    checks: list[CheckResult] = []
    metrics: dict = {"num_points": len(points), "scenarios": {}}
    for sc_name, plan in scenarios.items():

        def run_once():
            return MultiGpuSelfJoin(
                runtime=RuntimeConfig(
                    optimization=config,
                    sharding=ShardingConfig(num_devices=num_devices),
                    device=device,
                    seed=seed,
                    fault_plan=plan,
                    recovery=RecoveryPolicy(),
                )
            ).execute(points, eps)

        result = run_once()
        replay = run_once()
        pair_ok = np.array_equal(result.sorted_pairs(), ref_pairs)
        trace_ok = result.trace.signature() == replay.trace.signature()
        checks.append(CheckResult(f"pairs_identical[{sc_name}]", pair_ok, ""))
        checks.append(CheckResult(f"trace_replays[{sc_name}]", trace_ok, ""))
        metrics["scenarios"][sc_name] = {
            "makespan_seconds": result.makespan_seconds,
            "faults": plan.describe(),
        }
        ctx.note(f"{exp.exp_id}: {sc_name} {'ok' if pair_ok and trace_ok else 'FAIL'}")
    wall = time.perf_counter() - wall_t0

    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"{len(scenarios)} scenarios",
    )


# ---------------------------------------------------------------------------
# serve experiments


def run_serve(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.data import uniform
    from repro.grid import GridIndex
    from repro.runtime import (
        Runner,
        RuntimeConfig,
        compile_self_join,
        compile_similarity_join,
    )
    from repro.serve import AdmissionPolicy, JoinRequest, JoinService, ServeConfig

    eps_self = exp.workload.epsilon
    eps_sim = exp.params["epsilon_similarity"]
    points = exp.workload.build(ctx.size, ctx.seed)
    n = len(points)
    datasets = {
        "expo": points,
        "unif": uniform(n, 2, seed=ctx.seed + 2, low=0.0, high=1.0),
        "queries": uniform(max(8, n // 3), 2, seed=ctx.seed + 3, low=0.0, high=1.0),
    }
    rounds = exp.params["rounds"][ctx.size]
    tenant_counts = exp.params["tenant_counts"][ctx.size]

    runner = Runner()
    reference = {
        "self": runner.run(
            compile_self_join(GridIndex(datasets["expo"], eps_self), RuntimeConfig())
        ).sorted_pairs(),
        "sim": runner.run(
            compile_similarity_join(
                GridIndex(datasets["unif"], eps_sim), datasets["queries"], RuntimeConfig()
            )
        ).sorted_pairs(),
    }

    def workload(tenant: str) -> list[JoinRequest]:
        out = []
        for _ in range(rounds):
            out.append(
                JoinRequest(dataset="expo", epsilon=eps_self, tenant=tenant, tag="self")
            )
            out.append(
                JoinRequest(
                    dataset="unif",
                    epsilon=eps_sim,
                    kind="similarity",
                    query_dataset="queries",
                    tenant=tenant,
                    tag="sim",
                )
            )
        return out

    async def drive(num_tenants: int):
        config = ServeConfig(
            admission=AdmissionPolicy(max_concurrency=4, max_queue_depth=4096),
            cache_entries=8,
        )
        async with JoinService(config) as svc:
            for name, pts in datasets.items():
                svc.register_dataset(name, pts)
            started = time.perf_counter()
            tickets = []
            for tenant in (f"t{i}" for i in range(num_tenants)):
                for request in workload(tenant):
                    tickets.append(await svc.submit(request))
            responses = await asyncio.gather(*(svc.result(t) for t in tickets))
            elapsed = time.perf_counter() - started
            report = svc.report()
        return responses, elapsed, report

    checks: list[CheckResult] = []
    metrics: dict = {"num_points": n, "rounds": rounds, "tenants": {}}
    wall = 0.0
    total_requests = 0
    for num_tenants in tenant_counts:
        responses, elapsed, report = asyncio.run(drive(num_tenants))
        wall += elapsed
        total_requests += len(responses)
        problems = []
        for response in responses:
            if not response.ok:
                problems.append(f"request {response.request_id} ended {response.state}")
            elif not np.array_equal(response.result.sorted_pairs(), reference[response.tag]):
                problems.append(f"{response.tag} pairs diverge from the direct Runner")
        if report.requests_completed != len(responses):
            problems.append(
                f"{report.requests_completed}/{len(responses)} completed"
            )
        checks.append(
            CheckResult(
                f"responses_match_runner[T={num_tenants}]",
                not problems,
                "; ".join(problems[:3]),
            )
        )
        checks.append(
            CheckResult(
                f"cache_earns_hits[T={num_tenants}]",
                report.cache_hit_rate > 0,
                f"hit rate {report.cache_hit_rate:.2%}",
            )
        )
        checks.append(
            CheckResult(
                f"fairness_in_band[T={num_tenants}]",
                0.99 <= report.fairness_spread() <= 1.01,
                f"spread {report.fairness_spread():.4f}",
            )
        )
        metrics["tenants"][str(num_tenants)] = {
            "requests": len(responses),
            "completed": report.requests_completed,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
        }
        ctx.note(f"{exp.exp_id}: T={num_tenants} {len(responses)} requests")

    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=total_requests / wall if wall > 0 else None,
        metrics=metrics,
        checks=checks,
        budget=exp.budget,
        headline=f"T={tenant_counts} x {2 * rounds} reqs",
    )


# ---------------------------------------------------------------------------
# checkpoint experiments


def run_checkpoint(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from repro.data.synthetic import uniform
    from repro.grid import GridIndex
    from repro.resilience import (
        CheckpointStore,
        CrashPoint,
        FaultPlan,
        SimulatedCrashError,
    )
    from repro.runtime import (
        CheckpointConfig,
        Runner,
        RuntimeConfig,
        ShardingConfig,
        compile_self_join,
        compile_similarity_join,
    )

    join_kind = exp.params["join_kind"]
    points = exp.workload.build(ctx.size, ctx.seed)
    eps = exp.workload.epsilon
    queries = uniform(
        max(8, int(len(points) * exp.params["query_fraction"])),
        2,
        seed=ctx.seed + 1,
        low=0.0,
        high=1.0,
    )
    index = GridIndex(points, eps)

    def _pooled(**kw) -> RuntimeConfig:
        return RuntimeConfig(sharding=ShardingConfig(num_devices=3), **kw)

    def compile_kind(rc: RuntimeConfig):
        if join_kind == "self":
            return compile_self_join(index, rc)
        return compile_similarity_join(index, queries, rc)

    repeats = ctx.effective_trials()
    golden_plan = compile_kind(_pooled())
    golden, golden_wall = _timed(lambda: Runner().run(golden_plan), repeats)
    num_shards = len(golden_plan.shard_stage.plan.shards)

    checks: list[CheckResult] = []
    wall_t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="ckpt-bench-") as tmp:
        ck = CheckpointConfig(directory=tmp)

        def checkpointed():
            runner = Runner()
            out = runner.run(compile_kind(_pooled(checkpoint=ck)))
            return out, runner.last_checkpoint_stats

        (ck_result, stats), ck_wall = _timed(checkpointed, repeats)
        checks.append(
            CheckResult(
                "checkpointing_preserves_answer",
                ck_result.pairs.tobytes() == golden.pairs.tobytes(),
                "",
            )
        )
        checks.append(
            CheckResult(
                "journal_cleaned_after_completion", not CheckpointStore(tmp).runs(), ""
            )
        )

        resumed_ok = 0
        problems = []
        for k in range(num_shards):
            try:
                Runner().run(
                    compile_kind(
                        _pooled(
                            fault_plan=FaultPlan(
                                seed=ctx.seed, crashes=(CrashPoint(at_shard=k),)
                            ),
                            checkpoint=ck,
                        )
                    )
                )
                problems.append(f"crash at shard {k} did not fire")
                continue
            except SimulatedCrashError:
                pass
            resumed = Runner().resume(compile_kind(_pooled(checkpoint=ck)))
            if resumed.pairs.tobytes() != golden.pairs.tobytes():
                problems.append(f"resume after kill@{k} changed pairs")
            elif resumed.trace.signature() != golden.trace.signature():
                problems.append(f"resume after kill@{k} changed trace")
            else:
                resumed_ok += 1
        checks.append(
            CheckResult(
                "kill_resume_bit_identical",
                not problems,
                "; ".join(problems[:3])
                if problems
                else f"{resumed_ok}/{num_shards} kill points",
            )
        )
    wall = time.perf_counter() - wall_t0 + golden_wall

    overhead = ck_wall - golden_wall
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=None,
        metrics={
            "num_points": len(points),
            "num_shards": num_shards,
            "num_pairs": int(golden.num_pairs),
            "fragments_written": stats.writes,
            "bytes_written": stats.bytes_written,
        },
        checks=checks,
        budget=exp.budget,
        headline=f"{num_shards} shards, +{1e3 * overhead:.1f}ms journaling",
    )


# ---------------------------------------------------------------------------
# knn experiments (the multi-round expansion driver over the generic runtime)


def run_knn(suite: BenchSuite, exp: BenchExperiment, ctx: RunContext) -> ExperimentResult:
    from scipy.spatial import cKDTree

    from repro.core.config import PRESETS
    from repro.resilience import CrashPoint, FaultPlan, SimulatedCrashError
    from repro.runtime import (
        CheckpointConfig,
        Runner,
        RuntimeConfig,
        ShardingConfig,
        compile_knn_join,
    )

    points = exp.workload.build(ctx.size, ctx.seed)
    n = len(points)
    eps0 = exp.workload.epsilon
    k = exp.params["k"][ctx.size]
    preset = PRESETS[exp.params.get("preset", "workqueue")]
    reps = ctx.effective_trials()

    def knn_plan(rc: RuntimeConfig):
        return compile_knn_join(points, k, rc, epsilon0=eps0)

    def run_with(engine: str):
        rc = RuntimeConfig(optimization=preset, seed=ctx.seed, engine=engine)
        return Runner().run(knn_plan(rc))

    checks: list[CheckResult] = []
    wall_t0 = time.perf_counter()

    timings: dict[str, float] = {}
    results = {"interpreted": run_with("interpreted")}
    for engine in ("vectorized", "native"):
        results[engine], timings[engine] = _timed(lambda e=engine: run_with(e), reps)
    golden = results["vectorized"]

    # tier-A: the three engines must agree to the byte
    problems = []
    for engine, res in results.items():
        if res.indices.tobytes() != golden.indices.tobytes():
            problems.append(f"{engine} neighbor ids diverge")
        elif res.distances.tobytes() != golden.distances.tobytes():
            problems.append(f"{engine} distances diverge")
        elif res.rounds != golden.rounds:
            problems.append(f"{engine} rounds {res.rounds} != {golden.rounds}")
    checks.append(CheckResult("engines_bit_identical", not problems, "; ".join(problems)))

    # tier-A: independent scipy oracle (continuous random data: no distance
    # ties, so the canonical (distance, id) order is fully determined)
    dd, ii = cKDTree(points).query(points, k=k + 1)
    oracle_idx = np.empty((n, k), dtype=np.int64)
    oracle_d = np.empty((n, k))
    for row in range(n):
        keep = ii[row] != row  # drop self; sorted by distance already
        oracle_idx[row] = ii[row][keep][:k]
        oracle_d[row] = dd[row][keep][:k]
    problems = []
    if not np.array_equal(golden.indices, oracle_idx):
        bad = int((golden.indices != oracle_idx).any(axis=1).sum())
        problems.append(f"neighbor ids differ from cKDTree on {bad}/{n} points")
    if not np.allclose(golden.distances, oracle_d, rtol=1e-9, atol=0.0):
        problems.append("distances drift from cKDTree beyond 1e-9")
    recomputed = np.linalg.norm(points[golden.indices] - points[:, None, :], axis=2)
    if not np.array_equal(golden.distances, recomputed):
        problems.append("reported distances are not the exact pairwise norms")
    checks.append(CheckResult("ckdtree_oracle_identity", not problems, "; ".join(problems)))

    # tier-A: pooled execution + a kill at every dispatch ordinal, resumed
    def pooled_rc(**kw) -> RuntimeConfig:
        return RuntimeConfig(
            optimization=preset,
            seed=ctx.seed,
            sharding=ShardingConfig(num_devices=3),
            **kw,
        )

    pooled_golden = Runner().run(knn_plan(pooled_rc()))
    checks.append(
        CheckResult(
            "pooled_matches_single",
            pooled_golden.indices.tobytes() == golden.indices.tobytes()
            and pooled_golden.distances.tobytes() == golden.distances.tobytes(),
            "",
        )
    )
    kill_cap = int(exp.params.get("max_kill_points", 24))
    with tempfile.TemporaryDirectory(prefix="knn-bench-") as tmp:
        ck = CheckpointConfig(directory=tmp)
        resumed_ok = 0
        fired = 0
        problems = []
        for kill in range(kill_cap):
            rc = pooled_rc(
                fault_plan=FaultPlan(seed=ctx.seed, crashes=(CrashPoint(at_shard=kill),)),
                checkpoint=ck,
            )
            try:
                Runner().run(knn_plan(rc))
                break  # ordinal beyond the last dispatch: the run completed
            except SimulatedCrashError:
                fired += 1
            resumed = Runner().resume(knn_plan(pooled_rc(checkpoint=ck)))
            if (
                resumed.indices.tobytes() != pooled_golden.indices.tobytes()
                or resumed.distances.tobytes() != pooled_golden.distances.tobytes()
                or resumed.rounds != pooled_golden.rounds
            ):
                problems.append(f"resume after kill@{kill} diverged")
            else:
                resumed_ok += 1
        checks.append(
            CheckResult(
                "kill_resume_bit_identical",
                not problems and fired > 0,
                "; ".join(problems[:3]) if problems else f"{resumed_ok} kill points",
            )
        )
        ctx.note(f"{exp.exp_id}: {golden.rounds} rounds, {fired} kill points resumed")

    # tier-B: the native backend must not lose to the vectorized VM
    speedup = timings["vectorized"] / max(timings["native"], 1e-9)
    if size_at_least(ctx.size, "small"):
        checks.append(
            CheckResult(
                "native_knn_not_slower",
                speedup >= 1.0,
                f"native {speedup:.2f}x vs vectorized (need >= 1x)",
            )
        )
    else:
        checks.append(_skipped("native_knn_not_slower", "small"))

    wall = time.perf_counter() - wall_t0
    h = hashlib.sha256()
    h.update(golden.indices.tobytes())
    h.update(golden.distances.tobytes())
    return ExperimentResult(
        suite_id=suite.suite_id,
        exp_id=exp.exp_id,
        title=exp.title,
        wall_seconds=wall,
        throughput=(n * k) / timings["native"] if timings["native"] > 0 else None,
        metrics={
            "num_points": n,
            "k": k,
            "rounds": golden.rounds,
            "final_epsilon": golden.final_epsilon,
            "checksum": h.hexdigest()[:16],
        },
        checks=checks,
        budget=exp.budget,
        headline=f"{golden.rounds} rounds, native {speedup:.1f}x",
    )


# ---------------------------------------------------------------------------

EXECUTORS: dict[str, Callable] = {
    "model": run_model,
    "ablation": run_ablation,
    "engine": run_engine,
    "native": run_native,
    "native_scale": run_native_scale,
    "multigpu": run_multigpu,
    "resilience": run_resilience,
    "serve": run_serve,
    "checkpoint": run_checkpoint,
    "knn": run_knn,
}


def run_suite(
    suite: BenchSuite, ctx: RunContext, *, pattern: str | None = None
) -> SuiteRun:
    """Execute a suite's (optionally filtered) experiments."""
    selected = suite.select(pattern)
    results = []
    for exp in selected:
        ctx.note(f"== {suite.suite_id}/{exp.exp_id} ==")
        try:
            results.append(EXECUTORS[exp.kind](suite, exp, ctx))
        except Exception as err:  # a crashed experiment is a failed check
            results.append(
                ExperimentResult(
                    suite_id=suite.suite_id,
                    exp_id=exp.exp_id,
                    title=exp.title,
                    wall_seconds=0.0,
                    throughput=None,
                    metrics={},
                    checks=[
                        CheckResult(
                            "executes", False, f"{type(err).__name__}: {err}"
                        )
                    ],
                    budget=exp.budget,
                )
            )
            print(
                f"ERROR in {suite.suite_id}/{exp.exp_id}: {type(err).__name__}: {err}",
                file=sys.stderr,
            )
    suite_checks = []
    if pattern is None or pattern == "":
        for name in suite.aggregate_checks:
            suite_checks.append(AGGREGATE_CHECKS[name](results))
    return SuiteRun(suite=suite, results=results, suite_checks=suite_checks)

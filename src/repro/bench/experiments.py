"""Registry of the paper's evaluation artifacts at benchmark scale.

Scaling rules (recorded per experiment in EXPERIMENTS.md):

- Dataset sizes shrink from the paper's millions to benchmark defaults
  (``DEFAULT_SIZES``, overridable via the ``REPRO_BENCH_SCALE`` env var)
  so the suite completes on one Python core.
- **Uniform datasets preserve density**: the domain shrinks to
  ``100 · (N_bench / N_paper)^(1/n)`` so the paper's ε values apply
  unchanged and give the paper's per-point neighbor counts.
- For the skewed datasets (Expo*, SW-like, Gaia-like) ε sweeps are
  benchmark-scale values chosen to span the same workload regimes as the
  paper's sweeps (from a few to O(1000) mean neighbors); the ε *axis* is
  therefore not the paper's, the light-to-heavy progression is.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data import CATALOG, uniform
from repro.data.catalog import load_dataset

__all__ = [
    "DEFAULT_SIZES",
    "EXPERIMENTS",
    "ExperimentSpec",
    "bench_cpu",
    "bench_device",
    "bench_scale",
    "bench_size",
    "load_bench_dataset",
]

#: benchmark-scale dataset sizes (points) before REPRO_BENCH_SCALE
DEFAULT_SIZES: dict[str, int] = {
    **{f"Unif{d}D2M": 10_000 for d in range(2, 7)},
    **{f"Expo{d}D2M": 10_000 for d in range(2, 7)},
    "SW2DA": 10_000,
    "SW2DB": 26_000,
    "SW3DA": 10_000,
    "SW3DB": 26_000,
    "Gaia": 25_000,
}


def bench_device():
    """The simulated device used by the benchmarks.

    The paper runs ~62 k warps per kernel on 112 warp slots (hundreds of
    scheduling waves). At the bench's ~10 k-point datasets a full GP100
    would swallow a kernel in 3 waves and every scheduling effect would
    vanish, so the bench device keeps the GP100's warp size and clock but
    scales the slot count down with the dataset (14 SMs × 2 = 28 slots),
    preserving warps-per-slot ≫ 1. Absolute simulated times scale
    accordingly; shapes are what's compared (EXPERIMENTS.md §scaling).
    """
    from repro.simt import DeviceSpec

    return DeviceSpec(name="sim-gp100-bench-scaled", num_sms=14, warps_per_sm_slot=2)


def bench_cpu():
    """The modeled CPU used by the benchmarks' SUPER-EGO baseline.

    Scaled down with :func:`bench_device` (4 of the paper's 16 cores, the
    same ÷4 applied to the GPU's warp slots) so GPU-vs-CPU ratios are
    preserved at bench scale.
    """
    from repro.simt.device import CpuSpec

    return CpuSpec(name="sim-xeon-bench-scaled", num_cores=4)


def bench_scale() -> float:
    """Global size multiplier from the REPRO_BENCH_SCALE environment var."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        raise ValueError("REPRO_BENCH_SCALE must be a number") from None
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


def bench_size(dataset: str) -> int:
    """Benchmark point count for a named dataset."""
    return max(64, int(DEFAULT_SIZES[dataset] * bench_scale()))


def load_bench_dataset(name: str, *, size: int | None = None, seed: int = 0) -> np.ndarray:
    """Generate a dataset at benchmark scale with the documented scaling.

    Uniform datasets get the density-preserving shrunken domain; everything
    else uses its generator unchanged at the benchmark size.
    """
    entry = CATALOG[name]
    n = bench_size(name) if size is None else int(size)
    if entry.distribution == "uniform":
        high = 100.0 * (n / entry.paper_size) ** (1.0 / entry.ndim)
        return uniform(n, entry.ndim, seed=seed, high=high)
    return load_dataset(name, n, seed=seed)


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper table/figure: datasets × ε sweep × configurations.

    ``configs`` entries are :data:`repro.core.PRESETS` names, plus the
    special name ``"superego"`` for the CPU baseline. ``selected_eps`` marks
    the ε the paper's companion table profiles (None → all sweep values).
    """

    exp_id: str
    title: str
    datasets: tuple[str, ...]
    eps: dict[str, tuple[float, ...]]
    configs: tuple[str, ...]
    selected_eps: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def sweep(self, dataset: str, *, selected_only: bool = False):
        if selected_only and dataset in self.selected_eps:
            return (self.selected_eps[dataset],)
        return self.eps[dataset]


# ---------------------------------------------------------------------------
# ε sweeps at benchmark scale (see module docstring)
_SYNTH_EPS: dict[str, tuple[float, ...]] = {
    # paper ε apply directly (density-preserved domain)
    "Unif2D2M": (0.2, 0.4, 0.6, 0.8, 1.0),
    "Unif6D2M": (4.0, 5.0, 6.0, 8.0),
    # bench-scale sweeps spanning light→heavy workloads
    "Expo2D2M": (0.002, 0.005, 0.01, 0.015),
    "Expo6D2M": (0.01, 0.015, 0.02, 0.03),
}
_SYNTH_SELECTED = {
    "Expo2D2M": 0.01,  # paper Table III uses ε=0.2 (its heavy regime)
    "Expo6D2M": 0.02,  # paper: ε=1.2
    "Unif2D2M": 1.0,  # paper: ε=1.0
    "Unif6D2M": 8.0,  # paper: ε=8.0
}
_REAL_EPS: dict[str, tuple[float, ...]] = {
    "SW2DA": (2.0, 4.0, 6.0, 8.0),
    "SW2DB": (2.0, 4.0, 6.0, 8.0),
    "SW3DA": (3.0, 6.0, 9.0, 12.0),
    "SW3DB": (3.0, 6.0, 9.0, 12.0),
    "Gaia": (1.0, 2.0, 3.0, 5.0),
}
# bench ε whose mean-neighbor workload sits in the regime of the paper's
# profiled ε (paper values: SW2DA 1.2, SW2DB 0.4, SW3DA 2.4, SW3DB 0.8,
# Gaia 0.04 — at the paper's dataset sizes)
_REAL_SELECTED = {
    "SW2DA": 6.0,
    "SW2DB": 4.0,
    "SW3DA": 9.0,
    "SW3DB": 6.0,
    "Gaia": 3.0,
}

_SYNTH_DATASETS = ("Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M")
_REAL_DATASETS = ("SW2DA", "SW2DB", "SW3DA", "SW3DB", "Gaia")

# Figure 13 spans *all* Table I datasets (the paper omits only the 3–5-D
# synthetics from the intermediate plots, not from the summary); bench ε
# chosen for the same moderate-to-heavy workload regime.
_MIDDIM_SELECTED = {
    "Unif3D2M": 2.0,
    "Unif4D2M": 4.0,
    "Unif5D2M": 6.0,
    "Expo3D2M": 0.01,
    "Expo4D2M": 0.02,
    "Expo5D2M": 0.03,
}
_MIDDIM_DATASETS = tuple(sorted(_MIDDIM_SELECTED))

_ALL_DATASETS = _SYNTH_DATASETS + _MIDDIM_DATASETS + _REAL_DATASETS
_ALL_EPS = {**_SYNTH_EPS, **_REAL_EPS}
_ALL_SELECTED = {**_SYNTH_SELECTED, **_MIDDIM_SELECTED, **_REAL_SELECTED}


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        exp_id="table1",
        title="Table I — dataset summary",
        datasets=tuple(sorted(DEFAULT_SIZES)),
        eps={},
        configs=(),
        notes="inventory only; renders paper size, bench size, dims",
    ),
    "fig9": ExperimentSpec(
        exp_id="fig9",
        title="Figure 9 — response time vs ε: cell access patterns",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "unicomp", "lidunicomp"),
        notes="k = 1 throughout, as in the paper",
    ),
    "table3": ExperimentSpec(
        exp_id="table3",
        title="Table III — WEE and time: cell access patterns",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "unicomp", "lidunicomp"),
        selected_eps=_SYNTH_SELECTED,
    ),
    "fig10": ExperimentSpec(
        exp_id="fig10",
        title="Figure 10 — response time vs ε: k=1 vs k=8",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "k8"),
    ),
    "table4": ExperimentSpec(
        exp_id="table4",
        title="Table IV — WEE and time: k=1 vs k=8",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "k8"),
        selected_eps=_SYNTH_SELECTED,
    ),
    "fig11": ExperimentSpec(
        exp_id="fig11",
        title="Figure 11 — response time vs ε: SORTBYWL and WORKQUEUE",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "sortbywl", "workqueue"),
    ),
    "table5": ExperimentSpec(
        exp_id="table5",
        title="Table V — WEE and time: WORKQUEUE with k=8",
        datasets=_SYNTH_DATASETS,
        eps=_SYNTH_EPS,
        configs=("gpucalcglobal", "workqueue_k8"),
        selected_eps=_SYNTH_SELECTED,
    ),
    "fig12": ExperimentSpec(
        exp_id="fig12",
        title="Figure 12 — real-world datasets: combined optimizations vs baselines",
        datasets=_REAL_DATASETS,
        eps=_REAL_EPS,
        configs=(
            "gpucalcglobal",
            "superego",
            "workqueue",
            "workqueue_lidunicomp",
            "workqueue_k8",
            "combined",
        ),
    ),
    "table6": ExperimentSpec(
        exp_id="table6",
        title="Table VI — WEE and time on real-world datasets",
        datasets=_REAL_DATASETS,
        eps=_REAL_EPS,
        configs=(
            "gpucalcglobal",
            "workqueue",
            "workqueue_lidunicomp",
            "workqueue_k8",
            "combined",
        ),
        selected_eps=_REAL_SELECTED,
    ),
    "fig13": ExperimentSpec(
        exp_id="fig13",
        title="Figure 13 — speedup of the combined optimizations",
        datasets=_ALL_DATASETS,
        eps={name: (eps,) for name, eps in _ALL_SELECTED.items()},
        configs=("gpucalcglobal", "superego", "combined"),
        notes="speedups of combined over SUPER-EGO (a) and GPUCALCGLOBAL (b)",
    ),
    # -- ablations beyond the paper (design-choice benches) ---------------
    "abl_scheduler": ExperimentSpec(
        exp_id="abl_scheduler",
        title="Ablation — warp issue order in isolation",
        datasets=("Expo2D2M",),
        eps={"Expo2D2M": (0.01,)},
        configs=("gpucalcglobal", "sortbywl", "workqueue"),
        notes="separates warp composition (SORTBYWL) from forced order (WORKQUEUE)",
    ),
    "abl_estimator": ExperimentSpec(
        exp_id="abl_estimator",
        title="Ablation — result-size estimator sampling rate",
        datasets=("Expo2D2M",),
        eps={"Expo2D2M": (0.01,)},
        configs=("gpucalcglobal", "workqueue"),
        notes="sample_fraction swept by the bench itself",
    ),
    "abl_buffer": ExperimentSpec(
        exp_id="abl_buffer",
        title="Ablation — result buffer capacity (batch count vs time)",
        datasets=("Expo2D2M",),
        eps={"Expo2D2M": (0.01,)},
        configs=("workqueue",),
        notes="batch_result_capacity swept by the bench itself",
    ),
    "abl_warpsize": ExperimentSpec(
        exp_id="abl_warpsize",
        title="Ablation — warp size sensitivity",
        datasets=("Expo2D2M",),
        eps={"Expo2D2M": (0.01,)},
        configs=("gpucalcglobal", "workqueue"),
        notes="warp_size swept by the bench itself",
    ),
}

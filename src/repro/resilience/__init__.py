"""Fault injection and self-healing execution for the sharded join.

The paper's pipeline (and our PR-1 multi-GPU layer on top of it) assumes
an infallible machine: the batch estimator never under-guesses, devices
never die, and every device runs at spec. A production join service gets
none of those guarantees, so this package makes failure a first-class,
*deterministic* input:

- :class:`FaultPlan` (:mod:`repro.resilience.faults`) — a seeded,
  declarative description of device failures, stragglers, transient
  kernel errors and forced result-buffer overflows;
- :class:`FaultyExecutor` (:mod:`repro.resilience.executor`) — wraps any
  :class:`~repro.core.executor.BatchExecutor` and injects exactly the
  plan's faults, nothing else;
- :class:`RecoveryPolicy` (:mod:`repro.resilience.policy`) — how the
  :class:`~repro.multigpu.scheduler.HostScheduler` heals: bounded
  transient retries with backoff, shard requeue onto surviving devices,
  straggler speculation with first-result-wins, graceful degradation down
  to one device.

The contract, verified by tests and the resilience benchmark: under every
injected fault the merged :class:`~repro.core.result.JoinResult` is
pair-for-pair identical to the fault-free run, the
:class:`~repro.multigpu.scheduler.ScheduleTrace` is reproducible per seed,
and every second spent recovering is accounted in the
:class:`~repro.profiling.ResilienceReport`.

Quickstart::

    from repro.multigpu import MultiGpuSelfJoin
    from repro.resilience import DeviceFailure, FaultPlan, RecoveryPolicy
    from repro.runtime import RuntimeConfig, ShardingConfig

    plan = FaultPlan(seed=7, failures=[DeviceFailure(device_id=1, at_shard=1)])
    join = MultiGpuSelfJoin(runtime=RuntimeConfig(
        sharding=ShardingConfig(num_devices=4),
        fault_plan=plan, recovery=RecoveryPolicy()))
    result = join.execute(points, epsilon=0.5)   # pairs identical to fault-free
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointStats,
    CheckpointStore,
    RunJournal,
    config_identity,
    run_fingerprint,
)
from repro.resilience.executor import FaultyExecutor
from repro.resilience.faults import (
    AllDevicesLostError,
    CancellationStorm,
    ClientDisconnect,
    CrashPoint,
    DeviceFailure,
    DeviceLostError,
    FaultError,
    FaultPlan,
    ForcedOverflow,
    PoolCollapse,
    RunnerCrash,
    ServiceFaultPlan,
    SimulatedCrashError,
    SlowClient,
    Straggler,
    TransientFaults,
    TransientKernelError,
)
from repro.resilience.policy import RecoveryPolicy

__all__ = [
    "AllDevicesLostError",
    "CancellationStorm",
    "CheckpointError",
    "CheckpointStats",
    "CheckpointStore",
    "ClientDisconnect",
    "CrashPoint",
    "DeviceFailure",
    "DeviceLostError",
    "FaultError",
    "FaultPlan",
    "FaultyExecutor",
    "ForcedOverflow",
    "PoolCollapse",
    "RecoveryPolicy",
    "RunJournal",
    "RunnerCrash",
    "ServiceFaultPlan",
    "SimulatedCrashError",
    "SlowClient",
    "Straggler",
    "TransientFaults",
    "TransientKernelError",
    "config_identity",
    "run_fingerprint",
]

"""Durable checkpoint/resume: a fingerprint-keyed journal of shard results.

A crashed process (OOM kill, service restart, ``CrashPoint`` in a fault
plan) loses everything the paper's batching scheme worked to produce
incrementally. This module makes the increments durable: the
:class:`~repro.runtime.runner.Runner` opens a :class:`RunJournal` when
its plan carries a :class:`~repro.runtime.plan.CheckpointStage` and
persists each shard's :class:`~repro.core.result.JoinResult` the moment
it completes (atomic ``.npz`` fragments via
:mod:`repro.io.checkpoints`). ``Runner.resume`` replays the same
schedule but answers completed shards from the journal — the merged
result is **bit-identical** (pair bytes, trace signature) to the
uninterrupted run because shard execution is deterministic and the merge
is execution-order independent.

Identity
--------
A journal is keyed by :func:`run_fingerprint`: the dataset fingerprint
baked into :meth:`~repro.grid.GridIndex.fingerprint`, the query side (for
bipartite joins), the query subset, and the *result-relevant* half of the
:class:`~repro.runtime.config.RuntimeConfig` (:func:`config_identity`).
Fault plans, recovery policies, profiling retention and the checkpoint
config itself are **excluded** from the identity on purpose: the
resilience contract makes them result-invariant, and excluding them is
precisely what lets a run crashed by an injected ``CrashPoint`` resume
under a fault-free config and still find its journal.

Layout: ``<directory>/<fingerprint>/manifest.json`` plus one
``shard-NNNNN.npz`` per completed shard; ``finalize(keep=False)``
removes the journal on success, ``keep=True`` marks it done and leaves
the fragments for audit/re-reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.result import JoinResult
from repro.io.checkpoints import load_shard_fragment, save_shard_fragment

__all__ = [
    "CheckpointError",
    "CheckpointStats",
    "CheckpointStore",
    "RunJournal",
    "config_identity",
    "run_fingerprint",
]

_MANIFEST_VERSION = 1


class CheckpointError(RuntimeError):
    """A journal that cannot be used (stale, mismatched, corrupt)."""


@dataclass
class CheckpointStats:
    """What checkpointing cost (and saved) during one runner execution."""

    writes: int = 0
    loads: int = 0
    bytes_written: int = 0
    write_seconds: float = 0.0

    def to_record(self) -> dict:
        return {
            "writes": self.writes,
            "loads": self.loads,
            "bytes_written": self.bytes_written,
            "write_seconds": self.write_seconds,
        }


def config_identity(runtime) -> str:
    """Stable hash of the result-relevant part of a :class:`RuntimeConfig`.

    Strips ``fault_plan``, ``recovery``, ``checkpoint`` and ``profiling``
    before hashing: injected faults and healing change *how* a run
    executes, never *what* it returns (the resilience contract), so two
    configs differing only there share one journal. The sharding
    ``workers`` backend is normalized for the same reason — inline and
    process dispatch merge to the same pairs, so a run interrupted under
    one backend resumes under the other.
    """
    import dataclasses

    from repro.runtime.config import ProfilingOptions

    reduced = runtime.with_(
        fault_plan=None,
        recovery=None,
        checkpoint=None,
        profiling=ProfilingOptions(),
    )
    if reduced.sharding is not None and reduced.sharding.workers != "inline":
        reduced = reduced.with_(
            sharding=dataclasses.replace(reduced.sharding, workers="inline")
        )
    return hashlib.sha256(repr(reduced).encode()).hexdigest()


def run_fingerprint(plan) -> str:
    """Content identity of one compiled :class:`~repro.runtime.plan.JoinPlan`.

    Covers the op kind, the indexed dataset (+ grid spec, via
    :meth:`GridIndex.fingerprint`), the op's extra identity bytes
    (:meth:`~repro.runtime.ops.JoinOp.fingerprint_extras` — the query
    side of bipartite joins; ``k`` and the ε-schedule of kNN joins), the
    query subset, and :func:`config_identity`.
    """
    h = hashlib.sha256()
    h.update(plan.op.kind.encode())
    h.update(plan.index.fingerprint().encode())
    for chunk in plan.op.fingerprint_extras():
        h.update(chunk)
    if plan.subset is None:
        h.update(b"subset:all")
    else:
        h.update(np.ascontiguousarray(plan.subset, dtype=np.int64).tobytes())
    h.update(config_identity(plan.config).encode())
    return h.hexdigest()


class CheckpointStore:
    """A directory of run journals, one per fingerprint."""

    def __init__(self, directory):
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)

    def journal(
        self, fingerprint: str, *, kind: str, description: str, num_shards: int
    ) -> "RunJournal":
        """Open (creating or re-attaching to) the journal of one run."""
        return RunJournal(
            self.root / fingerprint,
            fingerprint=fingerprint,
            kind=kind,
            description=description,
            num_shards=num_shards,
        )

    def runs(self) -> list[str]:
        """Fingerprints with a journal present under this store."""
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and (p / "manifest.json").exists()
        )

    def discard(self, fingerprint: str) -> bool:
        """Delete one run's journal; returns whether it existed."""
        target = self.root / fingerprint
        if not target.is_dir():
            return False
        shutil.rmtree(target)
        return True


@dataclass
class RunJournal:
    """The durable record of one run's completed shards.

    Opening the journal validates the manifest against the caller's run
    identity — a directory written by a *different* run (same path, stale
    fingerprint or shard count) raises :class:`CheckpointError` instead
    of silently merging foreign shards.
    """

    directory: Path
    fingerprint: str
    kind: str
    description: str
    num_shards: int
    stats: CheckpointStats = field(default_factory=CheckpointStats)

    def __post_init__(self):
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / "manifest.json"
        manifest = {
            "manifest_version": _MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "description": self.description,
            "num_shards": int(self.num_shards),
        }
        if manifest_path.exists():
            existing = json.loads(manifest_path.read_text())
            for key in ("manifest_version", "fingerprint", "kind", "num_shards"):
                if existing.get(key) != manifest[key]:
                    raise CheckpointError(
                        f"journal at {self.directory} belongs to a different run "
                        f"({key}: {existing.get(key)!r} != {manifest[key]!r}); "
                        "discard it before reusing the path"
                    )
        else:
            tmp = manifest_path.with_name("manifest.json.tmp")
            tmp.write_text(json.dumps(manifest, indent=2))
            os.replace(tmp, manifest_path)

    # ----------------------------------------------------------- shards
    def _shard_path(self, shard_id: int) -> Path:
        return self.directory / f"shard-{int(shard_id):05d}.npz"

    def completed_shards(self) -> list[int]:
        """Sorted shard ids with a durable fragment on disk."""
        out = []
        for p in self.directory.glob("shard-*.npz"):
            try:
                out.append(int(p.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def save_shard(self, shard_id: int, result: JoinResult) -> None:
        """Persist one completed shard (atomic; overwrite is legal —
        speculative re-execution may complete a shard twice)."""
        t0 = time.perf_counter()
        size = save_shard_fragment(
            self._shard_path(shard_id),
            result,
            shard_id=shard_id,
            run_fingerprint=self.fingerprint,
        )
        self.stats.writes += 1
        self.stats.bytes_written += size
        self.stats.write_seconds += time.perf_counter() - t0

    def load_shard(self, shard_id: int) -> JoinResult:
        result, meta = load_shard_fragment(self._shard_path(shard_id))
        if meta.get("run") != self.fingerprint:
            raise CheckpointError(
                f"shard {shard_id} fragment belongs to run {meta.get('run')!r}, "
                f"not {self.fingerprint!r}"
            )
        self.stats.loads += 1
        return result

    def load_completed(self) -> dict[int, JoinResult]:
        """Every durable shard result, keyed by shard id."""
        return {sid: self.load_shard(sid) for sid in self.completed_shards()}

    # ----------------------------------------------------------- lifecycle
    @property
    def done(self) -> bool:
        return (self.directory / "done").exists()

    def finalize(self, *, keep: bool = False) -> None:
        """Mark the run complete: drop the journal, or keep it with a
        ``done`` marker when the caller wants the fragments retained."""
        if keep:
            (self.directory / "done").write_text("complete\n")
            return
        shutil.rmtree(self.directory, ignore_errors=True)

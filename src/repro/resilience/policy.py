"""How the host scheduler recovers: retries, requeues, speculation.

A :class:`RecoveryPolicy` is pure configuration — the
:class:`~repro.multigpu.scheduler.HostScheduler` interprets it. Passing a
policy switches the scheduler into its resilient run loop; ``None`` (the
default everywhere) keeps the PR-1 fail-fast behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Recovery knobs of the resilient host scheduler.

    Parameters
    ----------
    max_transient_retries:
        Retries of a transiently failed shard *on the same device* before
        it is requeued onto a different one.
    transient_backoff_seconds:
        Simulated backoff added to the device clock after each transient
        failure (on top of the failed attempt's own wasted time).
    max_shard_attempts:
        Hard bound on total attempts (all devices) per shard; exceeding it
        raises rather than looping forever on a hopeless fault plan.
    speculation:
        Enable straggler detection with speculative re-execution in the
        dynamic schedule: when the queue drains and the latest-finishing
        shard looks like a straggler, an idle device re-runs a copy and
        the first result wins (the loser is cancelled, its time recorded
        as waste).
    straggler_threshold:
        A completed shard counts as a straggler when its duration exceeds
        ``straggler_threshold`` times the median shard duration.
    speculation_min_benefit_seconds:
        Do not speculate unless the idle device could beat the straggler's
        projected finish by at least this much.
    """

    max_transient_retries: int = 2
    transient_backoff_seconds: float = 0.0
    max_shard_attempts: int = 8
    speculation: bool = True
    straggler_threshold: float = 1.5
    speculation_min_benefit_seconds: float = 0.0

    def __post_init__(self):
        if self.max_transient_retries < 0:
            raise ValueError("max_transient_retries must be >= 0")
        if self.transient_backoff_seconds < 0:
            raise ValueError("transient_backoff_seconds must be >= 0")
        if self.max_shard_attempts < 1:
            raise ValueError("max_shard_attempts must be >= 1")
        if self.straggler_threshold < 1.0:
            raise ValueError("straggler_threshold must be >= 1")
        if self.speculation_min_benefit_seconds < 0:
            raise ValueError("speculation_min_benefit_seconds must be >= 0")

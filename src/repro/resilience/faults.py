"""Deterministic fault injection: what can go wrong, and when.

A :class:`FaultPlan` is a *seeded, declarative* description of the faults a
run must survive — the simulated analogue of chaos testing a production
join service. Four fault species cover the failure modes a multi-GPU host
actually sees:

- :class:`DeviceFailure` — a device dies permanently when it starts its
  k-th shard (XID error, fell off the bus, preempted by the cluster);
- :class:`Straggler` — a device runs every kernel slower by a constant
  factor (thermal throttling, a noisy PCIe neighbour);
- :class:`TransientFaults` — a kernel launch fails with probability ``p``
  and can be retried (ECC hiccup, spurious launch failure);
- :class:`ForcedOverflow` — the device's result buffer is clamped so the
  batching estimator's guess *under*-sizes it and the overflow-recovery
  path runs for real.

Everything is deterministic per ``FaultPlan.seed``: the transient draws
come from a per-device ``SeedSequence(seed, device_id)`` stream, and the
other species are purely positional — so a faulty run replays exactly,
which is what lets tests assert the recovered result is pair-identical to
the fault-free one.

The plan is *injected*, never polled: a
:class:`~repro.resilience.executor.FaultyExecutor` wraps a device's
:class:`~repro.core.executor.BatchExecutor` and raises
:class:`DeviceLostError` / :class:`TransientKernelError` (or clamps the
buffer) according to the plan; the
:class:`~repro.multigpu.scheduler.HostScheduler` catches and recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AllDevicesLostError",
    "CancellationStorm",
    "ClientDisconnect",
    "CrashPoint",
    "DeviceFailure",
    "DeviceLostError",
    "FaultError",
    "FaultPlan",
    "ForcedOverflow",
    "PoolCollapse",
    "RunnerCrash",
    "ServiceFaultPlan",
    "SimulatedCrashError",
    "SlowClient",
    "Straggler",
    "TransientFaults",
    "TransientKernelError",
]


class FaultError(RuntimeError):
    """Base class of injected device faults."""


class DeviceLostError(FaultError):
    """The device failed permanently; its in-flight shard is lost.

    ``wasted_seconds`` is the simulated device time spent on the shard
    before the failure (charged to the device's clock by the scheduler).
    """

    def __init__(self, device_id: int, wasted_seconds: float = 0.0):
        super().__init__(f"device {device_id} lost")
        self.device_id = int(device_id)
        self.wasted_seconds = float(wasted_seconds)


class TransientKernelError(FaultError):
    """A kernel launch failed but the device survives; retry is legal.

    ``wasted_seconds`` is the simulated time the failed attempt burned
    (the full attempt: the error surfaces at completion, as a real launch
    failure is observed at synchronization).
    """

    def __init__(self, device_id: int, wasted_seconds: float = 0.0):
        super().__init__(f"transient kernel error on device {device_id}")
        self.device_id = int(device_id)
        self.wasted_seconds = float(wasted_seconds)


class AllDevicesLostError(FaultError):
    """Every device in the pool has failed; the join cannot complete."""


class SimulatedCrashError(FaultError):
    """The *host process* died mid-run (a :class:`CrashPoint` fired).

    Unlike device faults this is not recoverable in-process — the
    scheduler's recovery loop deliberately lets it propagate. The run's
    durable state is whatever the checkpoint journal holds; resume with
    :meth:`repro.runtime.runner.Runner.resume`.
    """

    def __init__(self, at_shard: int):
        super().__init__(
            f"simulated host crash at shard dispatch {at_shard} "
            "(resume from the checkpoint journal)"
        )
        self.at_shard = int(at_shard)


@dataclass(frozen=True)
class DeviceFailure:
    """Device ``device_id`` dies when it *starts* its ``at_shard``-th shard
    (0-based count of shard dispatches on that device)."""

    device_id: int
    at_shard: int = 0

    def __post_init__(self):
        if self.at_shard < 0:
            raise ValueError("at_shard must be >= 0")


@dataclass(frozen=True)
class Straggler:
    """Device ``device_id`` runs ``slowdown`` times slower than its spec."""

    device_id: int
    slowdown: float = 4.0

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (use 1.0 for no fault)")


@dataclass(frozen=True)
class TransientFaults:
    """Each shard dispatch on ``device_id`` fails with probability
    ``probability``; at most ``max_failures`` failures are injected
    (``None`` = unbounded)."""

    device_id: int
    probability: float = 0.5
    max_failures: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError("max_failures must be >= 0 or None")


@dataclass(frozen=True)
class ForcedOverflow:
    """The first ``times`` shard dispatches on ``device_id`` run with the
    result buffer clamped to ``clamp_capacity`` pairs (``None`` = an eighth
    of the requested capacity), forcing the overflow-recovery path."""

    device_id: int
    times: int = 1
    clamp_capacity: int | None = None

    def __post_init__(self):
        if self.times < 0:
            raise ValueError("times must be >= 0")
        if self.clamp_capacity is not None and self.clamp_capacity < 0:
            raise ValueError("clamp_capacity must be >= 0 or None")

    def clamp(self, result_capacity: int) -> int:
        if self.clamp_capacity is not None:
            return min(result_capacity, self.clamp_capacity)
        return max(1, result_capacity // 8)


@dataclass(frozen=True)
class CrashPoint:
    """The host process dies when it dispatches its ``at_shard``-th shard
    execution (0-based count of shard dispatches across the whole run).

    The runner raises :class:`SimulatedCrashError` *before* that dispatch
    executes, so exactly ``at_shard`` shard executions completed — the
    crash-at-shard-k scenario the checkpoint/resume acceptance pins. A
    single-device run counts as one dispatch: ``at_shard=0`` crashes it
    before any work, ``at_shard>=1`` never fires.
    """

    at_shard: int = 0

    def __post_init__(self):
        if self.at_shard < 0:
            raise ValueError("at_shard must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run.

    The empty plan (``FaultPlan()``) injects nothing — a run under it is
    byte-identical to an unwrapped run, which tests rely on.
    """

    seed: int = 0
    failures: tuple[DeviceFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    transients: tuple[TransientFaults, ...] = ()
    overflows: tuple[ForcedOverflow, ...] = ()
    crashes: tuple[CrashPoint, ...] = ()

    def __post_init__(self):
        # accept lists for ergonomics; store tuples so the plan stays hashable
        for name in ("failures", "stragglers", "transients", "overflows", "crashes"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    # -- per-device views ------------------------------------------------
    def failure_for(self, device_id: int) -> DeviceFailure | None:
        """The earliest-scheduled permanent failure of this device, if any."""
        hits = [f for f in self.failures if f.device_id == device_id]
        return min(hits, key=lambda f: f.at_shard) if hits else None

    def straggler_factor(self, device_id: int) -> float:
        """Combined slowdown of this device (product of matching faults)."""
        factor = 1.0
        for s in self.stragglers:
            if s.device_id == device_id:
                factor *= s.slowdown
        return factor

    def transient_for(self, device_id: int) -> TransientFaults | None:
        for t in self.transients:
            if t.device_id == device_id:
                return t
        return None

    def overflow_for(self, device_id: int) -> ForcedOverflow | None:
        for o in self.overflows:
            if o.device_id == device_id:
                return o
        return None

    def crash_point(self) -> CrashPoint | None:
        """The earliest host crash of this plan, if any."""
        return min(self.crashes, key=lambda c: c.at_shard) if self.crashes else None

    @property
    def is_empty(self) -> bool:
        return not (
            self.failures
            or self.stragglers
            or self.transients
            or self.overflows
            or self.crashes
        )

    @property
    def has_device_faults(self) -> bool:
        """Whether the plan injects faults the scheduler must *heal* from.

        Host crashes are excluded: a :class:`CrashPoint` kills the whole
        process (recovery happens via checkpoint resume, not requeue), so
        a crash-only plan does not imply a :class:`RecoveryPolicy` — the
        surviving execution stays byte-identical to the fault-free run.
        """
        return bool(
            self.failures or self.stragglers or self.transients or self.overflows
        )

    def describe(self) -> str:
        parts = []
        for f in self.failures:
            parts.append(f"kill(dev{f.device_id}@shard{f.at_shard})")
        for s in self.stragglers:
            parts.append(f"slow(dev{s.device_id}x{s.slowdown:g})")
        for t in self.transients:
            parts.append(f"flaky(dev{t.device_id} p={t.probability:g})")
        for o in self.overflows:
            parts.append(f"overflow(dev{o.device_id}x{o.times})")
        for c in self.crashes:
            parts.append(f"crash(@shard{c.at_shard})")
        return " ".join(parts) if parts else "fault-free"


# ----------------------------------------------------------------------
# Service-level fault species: what can go wrong *above* the device seam.
# Each is keyed by ``at_request`` — the 0-based dispatch ordinal at the
# JoinService (the n-th request leaving the queue for execution) — so an
# injection schedule is deterministic for a deterministic request sequence.


@dataclass(frozen=True)
class CancellationStorm:
    """When dispatch ordinal ``at_request`` fires, ``count`` queued
    requests (chosen by the plan's seeded RNG from the current backlog)
    are cancelled at once — the thundering-herd of client timeouts."""

    at_request: int
    count: int = 1

    def __post_init__(self):
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class ClientDisconnect:
    """The client of dispatch ordinal ``at_request`` goes away the moment
    its request starts executing; the service must discard the result and
    resolve the ticket terminally."""

    at_request: int

    def __post_init__(self):
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")


@dataclass(frozen=True)
class SlowClient:
    """The client of dispatch ordinal ``at_request`` consumes its result
    stream with ``delay_seconds`` of real wall-time stall per block — the
    backpressure case: a slow reader must not stall the service."""

    at_request: int
    delay_seconds: float = 0.01

    def __post_init__(self):
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")


@dataclass(frozen=True)
class PoolCollapse:
    """Mid-request pool collapse: while dispatch ordinal ``at_request``
    runs pooled, every device above the first ``keep_devices`` dies at its
    ``at_shard``-th shard (merged into the request's device fault plan)."""

    at_request: int
    keep_devices: int = 1
    at_shard: int = 1

    def __post_init__(self):
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")
        if self.keep_devices < 1:
            raise ValueError("keep_devices must be >= 1")
        if self.at_shard < 0:
            raise ValueError("at_shard must be >= 0")


@dataclass(frozen=True)
class RunnerCrash:
    """Crash-at-shard-k through the service: dispatch ordinal
    ``at_request`` gets a :class:`CrashPoint` at ``at_shard`` merged into
    its fault plan on its *first* attempt only — retries (which resume
    from the checkpoint journal when the request checkpoints) run clean."""

    at_request: int
    at_shard: int = 0

    def __post_init__(self):
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")
        if self.at_shard < 0:
            raise ValueError("at_shard must be >= 0")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A seeded, declarative set of *service* faults — the serving mirror
    of :class:`FaultPlan`, consumed by
    :class:`~repro.serve.chaos.ChaosController` via
    ``ServeConfig(chaos=...)``.

    Deterministic per ``seed``: the only random choice (storm victims) is
    drawn from a ``default_rng(seed)`` stream in injection order, so the
    same request sequence under the same plan produces the same
    ``ServiceLog`` signature.
    """

    seed: int = 0
    storms: tuple[CancellationStorm, ...] = ()
    disconnects: tuple[ClientDisconnect, ...] = ()
    slow_clients: tuple[SlowClient, ...] = ()
    collapses: tuple[PoolCollapse, ...] = ()
    crashes: tuple[RunnerCrash, ...] = ()

    def __post_init__(self):
        for name in ("storms", "disconnects", "slow_clients", "collapses", "crashes"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    # -- per-ordinal views ----------------------------------------------
    def storm_for(self, ordinal: int) -> CancellationStorm | None:
        for s in self.storms:
            if s.at_request == ordinal:
                return s
        return None

    def disconnect_for(self, ordinal: int) -> ClientDisconnect | None:
        for d in self.disconnects:
            if d.at_request == ordinal:
                return d
        return None

    def slow_client_for(self, ordinal: int) -> SlowClient | None:
        for s in self.slow_clients:
            if s.at_request == ordinal:
                return s
        return None

    def collapse_for(self, ordinal: int) -> PoolCollapse | None:
        for c in self.collapses:
            if c.at_request == ordinal:
                return c
        return None

    def crash_for(self, ordinal: int) -> RunnerCrash | None:
        for c in self.crashes:
            if c.at_request == ordinal:
                return c
        return None

    @property
    def is_empty(self) -> bool:
        return not (
            self.storms
            or self.disconnects
            or self.slow_clients
            or self.collapses
            or self.crashes
        )

    def describe(self) -> str:
        parts = []
        for s in self.storms:
            parts.append(f"storm(@r{s.at_request} x{s.count})")
        for d in self.disconnects:
            parts.append(f"disconnect(@r{d.at_request})")
        for s in self.slow_clients:
            parts.append(f"slow_client(@r{s.at_request})")
        for c in self.collapses:
            parts.append(f"collapse(@r{c.at_request} keep{c.keep_devices})")
        for c in self.crashes:
            parts.append(f"crash(@r{c.at_request}@shard{c.at_shard})")
        return " ".join(parts) if parts else "fault-free"

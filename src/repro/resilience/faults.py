"""Deterministic fault injection: what can go wrong, and when.

A :class:`FaultPlan` is a *seeded, declarative* description of the faults a
run must survive — the simulated analogue of chaos testing a production
join service. Four fault species cover the failure modes a multi-GPU host
actually sees:

- :class:`DeviceFailure` — a device dies permanently when it starts its
  k-th shard (XID error, fell off the bus, preempted by the cluster);
- :class:`Straggler` — a device runs every kernel slower by a constant
  factor (thermal throttling, a noisy PCIe neighbour);
- :class:`TransientFaults` — a kernel launch fails with probability ``p``
  and can be retried (ECC hiccup, spurious launch failure);
- :class:`ForcedOverflow` — the device's result buffer is clamped so the
  batching estimator's guess *under*-sizes it and the overflow-recovery
  path runs for real.

Everything is deterministic per ``FaultPlan.seed``: the transient draws
come from a per-device ``SeedSequence(seed, device_id)`` stream, and the
other species are purely positional — so a faulty run replays exactly,
which is what lets tests assert the recovered result is pair-identical to
the fault-free one.

The plan is *injected*, never polled: a
:class:`~repro.resilience.executor.FaultyExecutor` wraps a device's
:class:`~repro.core.executor.BatchExecutor` and raises
:class:`DeviceLostError` / :class:`TransientKernelError` (or clamps the
buffer) according to the plan; the
:class:`~repro.multigpu.scheduler.HostScheduler` catches and recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AllDevicesLostError",
    "DeviceFailure",
    "DeviceLostError",
    "FaultError",
    "FaultPlan",
    "ForcedOverflow",
    "Straggler",
    "TransientFaults",
    "TransientKernelError",
]


class FaultError(RuntimeError):
    """Base class of injected device faults."""


class DeviceLostError(FaultError):
    """The device failed permanently; its in-flight shard is lost.

    ``wasted_seconds`` is the simulated device time spent on the shard
    before the failure (charged to the device's clock by the scheduler).
    """

    def __init__(self, device_id: int, wasted_seconds: float = 0.0):
        super().__init__(f"device {device_id} lost")
        self.device_id = int(device_id)
        self.wasted_seconds = float(wasted_seconds)


class TransientKernelError(FaultError):
    """A kernel launch failed but the device survives; retry is legal.

    ``wasted_seconds`` is the simulated time the failed attempt burned
    (the full attempt: the error surfaces at completion, as a real launch
    failure is observed at synchronization).
    """

    def __init__(self, device_id: int, wasted_seconds: float = 0.0):
        super().__init__(f"transient kernel error on device {device_id}")
        self.device_id = int(device_id)
        self.wasted_seconds = float(wasted_seconds)


class AllDevicesLostError(FaultError):
    """Every device in the pool has failed; the join cannot complete."""


@dataclass(frozen=True)
class DeviceFailure:
    """Device ``device_id`` dies when it *starts* its ``at_shard``-th shard
    (0-based count of shard dispatches on that device)."""

    device_id: int
    at_shard: int = 0

    def __post_init__(self):
        if self.at_shard < 0:
            raise ValueError("at_shard must be >= 0")


@dataclass(frozen=True)
class Straggler:
    """Device ``device_id`` runs ``slowdown`` times slower than its spec."""

    device_id: int
    slowdown: float = 4.0

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (use 1.0 for no fault)")


@dataclass(frozen=True)
class TransientFaults:
    """Each shard dispatch on ``device_id`` fails with probability
    ``probability``; at most ``max_failures`` failures are injected
    (``None`` = unbounded)."""

    device_id: int
    probability: float = 0.5
    max_failures: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError("max_failures must be >= 0 or None")


@dataclass(frozen=True)
class ForcedOverflow:
    """The first ``times`` shard dispatches on ``device_id`` run with the
    result buffer clamped to ``clamp_capacity`` pairs (``None`` = an eighth
    of the requested capacity), forcing the overflow-recovery path."""

    device_id: int
    times: int = 1
    clamp_capacity: int | None = None

    def __post_init__(self):
        if self.times < 0:
            raise ValueError("times must be >= 0")
        if self.clamp_capacity is not None and self.clamp_capacity < 0:
            raise ValueError("clamp_capacity must be >= 0 or None")

    def clamp(self, result_capacity: int) -> int:
        if self.clamp_capacity is not None:
            return min(result_capacity, self.clamp_capacity)
        return max(1, result_capacity // 8)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run.

    The empty plan (``FaultPlan()``) injects nothing — a run under it is
    byte-identical to an unwrapped run, which tests rely on.
    """

    seed: int = 0
    failures: tuple[DeviceFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    transients: tuple[TransientFaults, ...] = ()
    overflows: tuple[ForcedOverflow, ...] = ()

    def __post_init__(self):
        # accept lists for ergonomics; store tuples so the plan stays hashable
        for name in ("failures", "stragglers", "transients", "overflows"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    # -- per-device views ------------------------------------------------
    def failure_for(self, device_id: int) -> DeviceFailure | None:
        """The earliest-scheduled permanent failure of this device, if any."""
        hits = [f for f in self.failures if f.device_id == device_id]
        return min(hits, key=lambda f: f.at_shard) if hits else None

    def straggler_factor(self, device_id: int) -> float:
        """Combined slowdown of this device (product of matching faults)."""
        factor = 1.0
        for s in self.stragglers:
            if s.device_id == device_id:
                factor *= s.slowdown
        return factor

    def transient_for(self, device_id: int) -> TransientFaults | None:
        for t in self.transients:
            if t.device_id == device_id:
                return t
        return None

    def overflow_for(self, device_id: int) -> ForcedOverflow | None:
        for o in self.overflows:
            if o.device_id == device_id:
                return o
        return None

    @property
    def is_empty(self) -> bool:
        return not (self.failures or self.stragglers or self.transients or self.overflows)

    def describe(self) -> str:
        parts = []
        for f in self.failures:
            parts.append(f"kill(dev{f.device_id}@shard{f.at_shard})")
        for s in self.stragglers:
            parts.append(f"slow(dev{s.device_id}x{s.slowdown:g})")
        for t in self.transients:
            parts.append(f"flaky(dev{t.device_id} p={t.probability:g})")
        for o in self.overflows:
            parts.append(f"overflow(dev{o.device_id}x{o.times})")
        return " ".join(parts) if parts else "fault-free"

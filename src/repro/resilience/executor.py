"""The fault-injecting executor wrapper.

:class:`FaultyExecutor` sits between a device's real
:class:`~repro.core.executor.BatchExecutor` and whoever drives it, and
makes the device misbehave exactly as its :class:`~repro.resilience.faults.
FaultPlan` dictates:

- a planned :class:`~repro.resilience.faults.DeviceFailure` raises
  :class:`~repro.resilience.faults.DeviceLostError` the moment the device
  starts its k-th shard (and forever after);
- a :class:`~repro.resilience.faults.ForcedOverflow` clamps the result
  buffer capacity handed to the inner executor, so the genuine overflow
  detection and recovery machinery runs — nothing is mocked;
- a :class:`~repro.resilience.faults.TransientFaults` stream fails the
  whole dispatch *after* it ran, wasting the attempt's full simulated
  duration, from a deterministic per-device random stream;
- a :class:`~repro.resilience.faults.Straggler` scales the attempt's
  kernel and transfer durations and re-simulates the stream pipeline —
  pairs and warp statistics are untouched, only time stretches.

The wrapper is transparent when the plan says nothing about its device:
results, timings and exceptions pass through bit-for-bit. It is also
duck-compatible with :class:`~repro.core.executor.BatchExecutor`, so a
single-device :class:`~repro.core.selfjoin.SelfJoin` can run against a
faulty device directly through the executor seam.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import BatchExecutor, BatchOutcome, OverflowRetry
from repro.resilience.faults import (
    DeviceLostError,
    FaultPlan,
    TransientKernelError,
)
from repro.simt.streams import simulate_stream_pipeline

__all__ = ["FaultyExecutor", "arm_pool"]


def arm_pool(pool, fault_plan: FaultPlan | None) -> dict[int, "FaultyExecutor"]:
    """Fresh fault-injecting wrappers for one run, keyed by device id.

    Re-arms every device's health record first (so a reused pool stays
    seed-reproducible), then — when a non-empty plan is given — wraps each
    device's executor in a new :class:`FaultyExecutor` sharing its health.
    Wrappers hold mutable injection state (the transient RNG stream, the
    overflow budget), so each run builds new ones — that is what makes a
    seeded fault run reproduce its trace exactly. Returns an empty mapping
    when no (or an empty) fault plan is set.
    """
    pool.reset_health()
    if fault_plan is None or fault_plan.is_empty:
        return {}
    return {
        d.device_id: FaultyExecutor(
            d.executor, d.device_id, fault_plan, health=d.health
        )
        for d in pool
    }


class FaultyExecutor:
    """Wraps a device's executor and injects the plan's faults.

    Parameters
    ----------
    inner:
        The real executor doing the work.
    device_id:
        Which device of the plan this wrapper impersonates.
    plan:
        The seeded fault plan; an empty plan makes the wrapper transparent.
    health:
        Optional :class:`~repro.multigpu.pool.DeviceHealth` shared with the
        host scheduler. When present, its ``shards_started`` counter (which
        the scheduler increments per shard dispatch) decides *when* a
        planned :class:`DeviceFailure` triggers, and a dead device refuses
        further work. Standalone (no health), the wrapper counts its own
        ``run_batches`` calls instead.

    A wrapper holds mutable injection state (transient RNG stream, the
    overflow budget); build a fresh one per run for seed-reproducibility.
    """

    def __init__(
        self,
        inner: BatchExecutor,
        device_id: int,
        plan: FaultPlan,
        *,
        health=None,
    ):
        self.inner = inner
        self.device_id = int(device_id)
        self.plan = plan
        self.health = health
        self._rng = np.random.default_rng(
            np.random.SeedSequence([plan.seed, self.device_id])
        )
        self._calls = 0
        self._overflows_spent = 0
        self._transient_failures = 0

    # ------------------------------------------------------------------
    def _dispatch_ordinal(self) -> int:
        """0-based ordinal of the current shard dispatch on this device."""
        if self.health is not None:
            return max(0, self.health.shards_started - 1)
        return self._calls - 1

    def run_batches(
        self,
        kernel,
        batches,
        make_args,
        *,
        result_capacity: int,
        num_streams: int,
        issue_order: str = "random",
        coop_groups: bool = False,
    ) -> BatchOutcome:
        self._calls += 1
        if self.health is not None and not self.health.alive:
            raise DeviceLostError(self.device_id)
        failure = self.plan.failure_for(self.device_id)
        if failure is not None and self._dispatch_ordinal() >= failure.at_shard:
            raise DeviceLostError(self.device_id)

        capacity = result_capacity
        forced = self.plan.overflow_for(self.device_id)
        if forced is not None and self._overflows_spent < forced.times:
            self._overflows_spent += 1
            capacity = forced.clamp(result_capacity)

        outcome = self.inner.run_batches(
            kernel,
            batches,
            make_args,
            result_capacity=capacity,
            num_streams=num_streams,
            issue_order=issue_order,
            coop_groups=coop_groups,
        )

        factor = self.plan.straggler_factor(self.device_id)
        if factor != 1.0:
            outcome = _slowed(outcome, factor, num_streams)

        transient = self.plan.transient_for(self.device_id)
        if transient is not None and (
            transient.max_failures is None
            or self._transient_failures < transient.max_failures
        ):
            if self._rng.random() < transient.probability:
                self._transient_failures += 1
                raise TransientKernelError(
                    self.device_id,
                    wasted_seconds=float(outcome.pipeline.total_seconds),
                )
        return outcome


def _slowed(outcome: BatchOutcome, factor: float, num_streams: int) -> BatchOutcome:
    """Stretch an outcome's durations by ``factor`` and re-run the pipeline.

    Pairs and warp statistics are deliberately untouched: a straggler is
    slow, not wrong.
    """
    kernel_secs = [s * factor for s in outcome.kernel_seconds]
    transfer_secs = [s * factor for s in outcome.transfer_seconds]
    return BatchOutcome(
        pairs_per_batch=outcome.pairs_per_batch,
        batch_stats=outcome.batch_stats,
        kernel_seconds=kernel_secs,
        transfer_seconds=transfer_secs,
        pipeline=simulate_stream_pipeline(
            kernel_secs, transfer_secs, num_streams=num_streams
        ),
        overflow_retries=[
            OverflowRetry(
                batch_index=r.batch_index,
                attempts=r.attempts,
                final_capacity=r.final_capacity,
                wasted_seconds=r.wasted_seconds * factor,
            )
            for r in outcome.overflow_retries
        ],
    )

"""``python -m repro`` — package-level maintenance commands.

``--api-dump`` prints the public API surface: every ``__all__`` export of
the public packages, with call signatures for classes and functions. CI
diffs the dump against the checked-in ``api_manifest.txt``, so a knob
added to (or dropped from) any layer — a facade kwarg, a RuntimeConfig
field, an executor parameter — shows up as a reviewed manifest change
instead of silent drift. Regenerate after an intentional change with::

    PYTHONPATH=src python -m repro --api-dump > api_manifest.txt
"""

from __future__ import annotations

import importlib
import inspect
import sys

#: The packages whose ``__all__`` constitutes the supported surface.
PUBLIC_MODULES = (
    "repro",
    "repro.bench",
    "repro.core",
    "repro.grid",
    "repro.multigpu",
    "repro.resilience",
    "repro.runtime",
    "repro.serve",
    "repro.simt",
)


def _signature(obj) -> str:
    """Best-effort canonical signature; empty for non-callables."""
    try:
        if inspect.isclass(obj):
            sig = inspect.signature(obj.__init__)
            params = [p for n, p in sig.parameters.items() if n != "self"]
            return str(sig.replace(parameters=params))
        if callable(obj):
            return str(inspect.signature(obj))
    except (TypeError, ValueError):
        pass
    return ""


def _kind(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    if isinstance(obj, (str, int, float, tuple, frozenset, dict)):
        return "const"
    return "object"


def api_surface() -> list[str]:
    """One sorted line per export: ``module.name [kind] signature``."""
    lines: list[str] = []
    for mod_name in PUBLIC_MODULES:
        mod = importlib.import_module(mod_name)
        for name in sorted(getattr(mod, "__all__", ())):
            obj = getattr(mod, name)
            sig = _signature(obj)
            entry = f"{mod_name}.{name} [{_kind(obj)}]"
            if sig:
                entry += f" {sig}"
            lines.append(entry)
    return lines


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--api-dump"]:
        print("\n".join(api_surface()))
        return 0
    prog = "python -m repro"
    print(f"usage: {prog} --api-dump", file=sys.stderr)
    return 0 if argv in ([], ["--help"], ["-h"]) else 2


if __name__ == "__main__":
    raise SystemExit(main())

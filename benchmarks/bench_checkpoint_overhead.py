"""Checkpoint overhead + crash/resume equivalence drill.

Measures what durable checkpointing costs on top of a plain pooled join —
wall-clock overhead and bytes journaled per run — and proves the two
acceptance properties of the checkpoint subsystem:

1. **resume identity** — a run killed at shard *k* (host-process crash,
   :class:`~repro.resilience.faults.CrashPoint`) and resumed from its
   journal produces pairs and a ``ScheduleTrace`` signature bit-identical
   to the uninterrupted golden run, for every ``k`` and for both self and
   bipartite joins;
2. **bounded overhead** — checkpointing never changes the answer, and the
   journal is cleaned up after a completed run.

Everything lands in a JSON file; exits nonzero if any property fails —
this is the CI chaos-job smoke.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_checkpoint_overhead.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.data.synthetic import exponential, uniform
from repro.grid import GridIndex
from repro.resilience import (
    CheckpointStore,
    CrashPoint,
    FaultPlan,
    SimulatedCrashError,
)
from repro.runtime import (
    CheckpointConfig,
    Runner,
    RuntimeConfig,
    ShardingConfig,
    compile_self_join,
    compile_similarity_join,
)

NUM_DEVICES = 3


def make_datasets(quick: bool, seed: int):
    n = 400 if quick else 1500
    nq = 150 if quick else 500
    return {
        "points": exponential(n, 2, seed=seed, lam=2.0),
        "queries": uniform(nq, 2, seed=seed + 1, low=0.0, high=1.0),
        "epsilon": 0.08,
    }


def _pooled(**kw) -> RuntimeConfig:
    return RuntimeConfig(sharding=ShardingConfig(num_devices=NUM_DEVICES), **kw)


def _timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def run_drill(data, seed: int, repeats: int):
    rows = []
    errors = []
    index = GridIndex(data["points"], data["epsilon"])
    plans = {
        "self": lambda rc: compile_self_join(index, rc),
        "bipartite": lambda rc: compile_similarity_join(index, data["queries"], rc),
    }
    for kind, compile_kind in plans.items():
        golden_plan = compile_kind(_pooled())
        golden, golden_wall = _timed(lambda: Runner().run(golden_plan), repeats)
        num_shards = len(golden_plan.shard_stage.plan.shards)

        with tempfile.TemporaryDirectory(prefix="ckpt-bench-") as tmp:
            ck = CheckpointConfig(directory=tmp)

            # overhead: the same run, journaling every shard fragment
            def checkpointed():
                runner = Runner()
                out = runner.run(compile_kind(_pooled(checkpoint=ck)))
                return out, runner.last_checkpoint_stats

            (ck_result, stats), ck_wall = _timed(checkpointed, repeats)
            if ck_result.pairs.tobytes() != golden.pairs.tobytes():
                errors.append(f"{kind}: checkpointing changed the answer")
            if CheckpointStore(tmp).runs():
                errors.append(f"{kind}: journal not cleaned up after completion")

            # crash at every k, resume, demand bit-identity
            kills = []
            for k in range(num_shards):
                try:
                    Runner().run(
                        compile_kind(
                            _pooled(
                                fault_plan=FaultPlan(
                                    seed=seed, crashes=(CrashPoint(at_shard=k),)
                                ),
                                checkpoint=ck,
                            )
                        )
                    )
                    errors.append(f"{kind}: crash at shard {k} did not fire")
                    continue
                except SimulatedCrashError:
                    pass
                resumed = Runner().resume(compile_kind(_pooled(checkpoint=ck)))
                pairs_ok = resumed.pairs.tobytes() == golden.pairs.tobytes()
                trace_ok = resumed.trace.signature() == golden.trace.signature()
                if not pairs_ok:
                    errors.append(f"{kind}: resume after kill@{k} changed pairs")
                if not trace_ok:
                    errors.append(f"{kind}: resume after kill@{k} changed trace")
                kills.append({"k": k, "pairs_ok": pairs_ok, "trace_ok": trace_ok})

        overhead = ck_wall - golden_wall
        rows.append(
            {
                "kind": kind,
                "num_shards": num_shards,
                "num_pairs": int(golden.num_pairs),
                "golden_wall_seconds": golden_wall,
                "checkpointed_wall_seconds": ck_wall,
                "overhead_seconds": overhead,
                "overhead_percent": (
                    100.0 * overhead / golden_wall if golden_wall > 0 else 0.0
                ),
                "bytes_written": stats.bytes_written,
                "fragments_written": stats.writes,
                "write_seconds": stats.write_seconds,
                "kills": kills,
            }
        )
        print(
            f"{kind:>9}: {num_shards} shards, {golden.num_pairs} pairs | "
            f"golden {golden_wall * 1e3:.1f}ms, checkpointed {ck_wall * 1e3:.1f}ms "
            f"(+{rows[-1]['overhead_percent']:.1f}%), "
            f"{stats.bytes_written} B journaled | "
            f"{len(kills)}/{num_shards} kill points resumed bit-identical"
        )
    return rows, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: smaller datasets"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset seed (default: %(default)s)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats, best-of (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="results/checkpoint_overhead.json",
        help="JSON output path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    data = make_datasets(args.quick, args.seed)
    rows, errors = run_drill(data, args.seed, args.repeats)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "seed": args.seed,
                "num_devices": NUM_DEVICES,
                "runs": rows,
            },
            indent=2,
        )
    )
    print(f"\nwrote {out}")

    if errors:
        print("\nFAILED properties:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    total_kills = sum(len(r["kills"]) for r in rows)
    print(
        f"\nall properties passed: {total_kills} kill-and-resume runs "
        "bit-identical to golden, journals cleaned up, answers unchanged"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

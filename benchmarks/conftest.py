"""Shared infrastructure for the per-table/per-figure benchmarks.

Each benchmark times the library's real work — ``PerformanceModel.estimate``
over a cached workload profile, or a full SUPER-EGO join in counting mode —
and attaches the *simulated* metrics (modeled seconds, WEE, batches) as
``extra_info`` so the paper-shape numbers travel with the timing report.

Dataset sizes follow :mod:`repro.bench.experiments` defaults; set
``REPRO_BENCH_SCALE`` to grow/shrink everything proportionally.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import EXPERIMENTS, bench_device, load_bench_dataset
from repro.bench.runner import BENCH_BATCH_CAPACITY, run_superego_row
from repro.core import PRESETS
from repro.perfmodel import PerformanceModel

_SEED = 0


class BenchContext:
    """Session-wide caches: datasets and workload profiles."""

    def __init__(self):
        self.model = PerformanceModel(device=bench_device(), seed=_SEED)
        self._datasets = {}
        self._profiles = {}

    def dataset(self, name: str):
        if name not in self._datasets:
            self._datasets[name] = load_bench_dataset(name, seed=_SEED)
        return self._datasets[name]

    def profile(self, name: str, eps: float):
        key = (name, float(eps))
        if key not in self._profiles:
            profile = self.model.profile(self.dataset(name), eps)
            profile.neighbor_counts()  # materialize the expensive pass once
            self._profiles[key] = profile
        return self._profiles[key]


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext()


def run_gpu_cell(benchmark, ctx: BenchContext, dataset: str, eps: float, config: str):
    """Benchmark one (dataset, ε, GPU config) cell and return its row."""
    profile = ctx.profile(dataset, eps)
    cfg = PRESETS[config].with_(batch_result_capacity=BENCH_BATCH_CAPACITY)
    run = benchmark.pedantic(
        ctx.model.estimate, args=(profile, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        dataset=dataset,
        eps=eps,
        config=config,
        simulated_seconds=run.total_seconds,
        wee_percent=round(100 * run.warp_execution_efficiency, 2),
        batches=run.num_batches,
        result_rows=run.total_result_rows,
    )
    return run


def run_cpu_cell(benchmark, ctx: BenchContext, dataset: str, eps: float):
    """Benchmark the SUPER-EGO baseline on one (dataset, ε) cell."""
    points = ctx.dataset(dataset)
    row = benchmark.pedantic(
        run_superego_row,
        args=(points, eps),
        kwargs=dict(dataset=dataset),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        dataset=dataset,
        eps=eps,
        config="superego",
        simulated_seconds=row.seconds,
        result_rows=row.result_rows,
    )
    return row


def cells_of(exp_id: str, *, selected_only: bool):
    """(dataset, eps, config) parameter grid of one experiment."""
    spec = EXPERIMENTS[exp_id]
    out = []
    for ds in spec.datasets:
        for eps in spec.sweep(ds, selected_only=selected_only):
            for config in spec.configs:
                out.append(pytest.param(ds, eps, config, id=f"{ds}-eps{eps}-{config}"))
    return out


def fmt_wee(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.1f}%"


def build_report(ctx: BenchContext, exp_id: str, *, selected_only: bool):
    """Assemble an experiment's paper-style report from cached profiles.

    This is what the ``test_report_*`` benchmarks time: the full model
    evaluation of every (dataset, ε, config) cell (profiles already built).
    """
    from repro.bench.runner import BENCH_BATCH_CAPACITY
    from repro.profiling import ProfileReport, ProfileRow

    spec = EXPERIMENTS[exp_id]
    report = ProfileReport(spec.title)
    for ds in spec.datasets:
        for eps in spec.sweep(ds, selected_only=selected_only):
            for config in spec.configs:
                if config == "superego":
                    report.add(run_superego_row(ctx.dataset(ds), eps, dataset=ds))
                    continue
                profile = ctx.profile(ds, eps)
                cfg = PRESETS[config].with_(
                    batch_result_capacity=BENCH_BATCH_CAPACITY
                )
                run = ctx.model.estimate(profile, cfg)
                report.add(
                    ProfileRow(
                        dataset=ds,
                        epsilon=float(eps),
                        config=config,
                        wee_percent=100 * run.warp_execution_efficiency,
                        seconds=run.total_seconds,
                        num_batches=run.num_batches,
                        num_warps=run.num_warps,
                        result_rows=run.total_result_rows,
                    )
                )
    return report


def times_by_config(report, dataset: str, eps: float) -> dict[str, float]:
    """Convenience lookup: config -> simulated seconds for one cell."""
    return {
        r.config: r.seconds
        for r in report.rows
        if r.dataset == dataset and r.epsilon == float(eps)
    }

#!/usr/bin/env python
"""Multi-device scaling, shard planning and DEE invariants.

Thin shim over the unified harness: runs suite ``multigpu``
through :mod:`repro.bench.executors` with the shared CLI
(``--size/--seed/--trials/--filter/--json``; ``--quick`` = tiny).
Equivalent to::

    python -m repro.bench suite run multigpu --size small

Exits nonzero if any correctness cross-check fails.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.cli import standalone_main

if __name__ == "__main__":
    sys.exit(standalone_main("multigpu"))

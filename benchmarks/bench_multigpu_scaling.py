"""Multi-device scaling: makespan, speedup and device execution efficiency.

Runs the sharded self-join over pools of N ∈ {1, 2, 4, 8} simulated
devices, for every shard planner × schedule mode, on two datasets:

- ``expo`` — the paper's exponentially distributed workload (Section
  IV-A), heavy-tailed per-point work but *id-uncorrelated*: round-robin
  point-striding is statistically balanced here;
- ``stride_aliased`` — the adversarial case for striding: the heavy
  points sit at ids ≡ 0 (mod period), as they would after interleaved or
  ordered data arrival, so point-striding aliases them onto few shards
  while the LPT planner stays level.

Every run is cross-checked pair-for-pair against the single-device
SelfJoin. The script exits nonzero if results diverge, or if the balanced
(LPT) planner fails to beat point-striding on device execution efficiency
for the adversarial dataset — the acceptance property of the subsystem.

Devices are deliberately small (8 warp slots): shard workloads then
dominate busy time, so device-level imbalance is visible rather than
hidden behind idle warp slots.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_multigpu_scaling.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core import OptimizationConfig, SelfJoin
from repro.data.adversarial import stride_aliased_hotspots
from repro.data.synthetic import exponential
from repro.multigpu import SCHEDULE_MODES, SHARD_PLANNERS, DevicePool, MultiGpuSelfJoin
from repro.profiling import DeviceReport
from repro.simt import DeviceSpec

SMALL_DEVICE = DeviceSpec(name="sim-small", num_sms=4, warps_per_sm_slot=2)
SHARDS_PER_DEVICE = 2


def make_datasets(quick: bool, seed: int = 0) -> dict[str, tuple[np.ndarray, float]]:
    n = 600 if quick else 2000
    return {
        "expo": (exponential(n, 2, seed=seed + 1), 0.02),
        "stride_aliased": (
            stride_aliased_hotspots(n, 2, period=8, seed=seed + 3),
            2.0,
        ),
    }


def run_grid(datasets, pool_sizes, config, seed=0) -> tuple[DeviceReport, list[str]]:
    report = DeviceReport(title="multi-device scaling")
    errors: list[str] = []
    for name, (points, eps) in datasets.items():
        reference = SelfJoin(config, device=SMALL_DEVICE, seed=seed).execute(
            points, eps
        )
        for num_devices in pool_sizes:
            pool = DevicePool(num_devices, spec=SMALL_DEVICE, seed=seed)
            for planner in SHARD_PLANNERS:
                for schedule in SCHEDULE_MODES:
                    run = MultiGpuSelfJoin(
                        config,
                        pool=pool,
                        planner=planner,
                        schedule=schedule,
                        shards_per_device=SHARDS_PER_DEVICE,
                        seed=seed,
                    ).execute(points, eps)
                    report.add_run(run, dataset=name, epsilon=eps)
                    if not np.array_equal(
                        run.sorted_pairs(), reference.sorted_pairs()
                    ):
                        errors.append(
                            f"result mismatch: {name} N={num_devices} "
                            f"{planner}/{schedule}"
                        )
    return report, errors


def check_balanced_beats_strided(report: DeviceReport, dataset: str) -> list[str]:
    """The acceptance property: on id-correlated skew, the LPT planner must
    deliver strictly higher device execution efficiency than striding."""
    errors = []
    dee = {
        (r.num_devices, r.planner, r.schedule): r.dee_percent
        for r in report.rows
        if r.dataset == dataset
    }
    for (n, planner, schedule), value in sorted(dee.items()):
        if n == 1 or planner != "strided":
            continue
        balanced = dee[(n, "balanced", schedule)]
        if not balanced > value:
            errors.append(
                f"balanced DEE {balanced:.1f}% not above strided {value:.1f}% "
                f"({dataset}, N={n}, {schedule})"
            )
    return errors


def print_scaling(report: DeviceReport, datasets, pool_sizes) -> None:
    print("\nScaling (dynamic schedule, makespan vs N=1 of the same planner):")
    for name, (_, eps) in datasets.items():
        for planner in SHARD_PLANNERS:
            curve = report.scaling(name, eps, planner, "dynamic")
            if 1 not in curve:
                continue
            base = curve[1]
            cells = [
                f"N={n}: {base / curve[n]:.2f}x ({100 * base / (curve[n] * n):.0f}% eff)"
                for n in pool_sizes
                if n in curve and curve[n] > 0
            ]
            print(f"  {name:>15} {planner:>11}  " + "  ".join(cells))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: smaller data, N ≤ 4"
    )
    parser.add_argument(
        "--out",
        default="results/multigpu_scaling.json",
        help="JSON output path (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for datasets, device executors and issue-order "
        "shuffles (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    pool_sizes = (1, 2, 4) if args.quick else (1, 2, 4, 8)
    datasets = make_datasets(args.quick, seed=args.seed)
    config = OptimizationConfig(pattern="lidunicomp", work_queue=True, k=2)

    report, errors = run_grid(datasets, pool_sizes, config, seed=args.seed)
    print(report.render())
    print_scaling(report, datasets, pool_sizes)
    errors += check_balanced_beats_strided(report, "stride_aliased")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "seed": args.seed,
                "pool_sizes": list(pool_sizes),
                "shards_per_device": SHARDS_PER_DEVICE,
                "device": SMALL_DEVICE.name,
                "config": config.describe(),
                "rows": report.to_records(),
            },
            indent=2,
        )
    )
    print(f"\nwrote {out}")

    if errors:
        print("\nFAILED properties:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("\nall cross-checks passed: merged results identical to single-device, "
          "balanced planner above strided DEE on the adversarial dataset")
    return 0


if __name__ == "__main__":
    sys.exit(main())

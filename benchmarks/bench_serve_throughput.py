"""Serving throughput: concurrent multi-tenant joins vs the direct Runner.

Drives ``repro.serve.JoinService`` with T ∈ {1, 4, 16} tenants, each
submitting the same mixed self/similarity workload over shared datasets,
and reports wall-clock throughput, session-cache hit rate, queue latency
percentiles and the per-tenant fairness spread from the ``ServiceReport``.

Every response is cross-checked pair-for-pair against a serial reference
computed through the same compile → ``Runner`` pipeline the service uses
internally, so a nonzero exit means the serving layer changed an answer.
The script also fails if the session cache earns no hits (every workload
repeats datasets, so reuse must kick in) or if the fairness spread across
identically-loaded tenants leaves the unit band.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data import exponential, uniform
from repro.grid import GridIndex
from repro.runtime import Runner, RuntimeConfig, compile_self_join, compile_similarity_join
from repro.serve import AdmissionPolicy, JoinRequest, JoinService, ServeConfig

TENANT_COUNTS = (1, 4, 16)
EPS_SELF = 0.05
EPS_SIM = 0.06


def make_datasets(quick: bool, seed: int) -> dict[str, np.ndarray]:
    n = 400 if quick else 1200
    return {
        "expo": exponential(n, 2, seed=seed + 1),
        "unif": uniform(n, 2, seed=seed + 2, low=0.0, high=1.0),
        "queries": uniform(n // 3, 2, seed=seed + 3, low=0.0, high=1.0),
    }


def workload(tenant: str, rounds: int) -> list[JoinRequest]:
    """Identical per tenant: repeated datasets exercise the cache, the
    self/similarity mix exercises both compile paths."""
    out = []
    for _ in range(rounds):
        out.append(
            JoinRequest(dataset="expo", epsilon=EPS_SELF, tenant=tenant, tag="self")
        )
        out.append(
            JoinRequest(
                dataset="unif",
                epsilon=EPS_SIM,
                kind="similarity",
                query_dataset="queries",
                tenant=tenant,
                tag="sim",
            )
        )
    return out


def serial_reference(datasets: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    runner = Runner()
    self_plan = compile_self_join(
        GridIndex(datasets["expo"], EPS_SELF), RuntimeConfig()
    )
    sim_plan = compile_similarity_join(
        GridIndex(datasets["unif"], EPS_SIM), datasets["queries"], RuntimeConfig()
    )
    return {
        "self": runner.run(self_plan).sorted_pairs(),
        "sim": runner.run(sim_plan).sorted_pairs(),
    }


async def drive(
    datasets: dict[str, np.ndarray], num_tenants: int, rounds: int
) -> tuple[dict, list]:
    config = ServeConfig(
        admission=AdmissionPolicy(max_concurrency=4, max_queue_depth=4096),
        cache_entries=8,
    )
    async with JoinService(config) as svc:
        for name, pts in datasets.items():
            svc.register_dataset(name, pts)
        started = time.perf_counter()
        tickets = []
        for tenant in (f"t{i}" for i in range(num_tenants)):
            for request in workload(tenant, rounds):
                tickets.append(await svc.submit(request))
        responses = await asyncio.gather(*(svc.result(t) for t in tickets))
        wall = time.perf_counter() - started
        report = svc.report()
    row = {
        "tenants": num_tenants,
        "requests": len(tickets),
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(len(tickets) / wall, 2),
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "queue_p50_seconds": round(report.queue_latency(50), 4),
        "queue_p95_seconds": round(report.queue_latency(95), 4),
        "fairness_spread": round(report.fairness_spread(), 4),
        "completed": report.requests_completed,
    }
    return row, responses


def check(row: dict, responses: list, reference: dict[str, np.ndarray]) -> list[str]:
    errors = []
    for response in responses:
        if not response.ok:
            errors.append(
                f"T={row['tenants']}: request {response.request_id} "
                f"ended {response.state}: {response.error}"
            )
            continue
        expected = reference[response.tag]
        if not np.array_equal(response.result.sorted_pairs(), expected):
            errors.append(
                f"T={row['tenants']}: {response.tag} pairs diverge from the "
                f"direct Runner ({response.num_pairs} vs {len(expected)})"
            )
    if row["completed"] != row["requests"]:
        errors.append(
            f"T={row['tenants']}: {row['completed']}/{row['requests']} completed"
        )
    if row["cache_hit_rate"] <= 0:
        errors.append(f"T={row['tenants']}: session cache earned no hits")
    if not (0.99 <= row["fairness_spread"] <= 1.01):
        errors.append(
            f"T={row['tenants']}: fairness spread {row['fairness_spread']} "
            "outside the unit band for identical workloads"
        )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: smaller data, fewer rounds"
    )
    parser.add_argument(
        "--out",
        default="results/serve_throughput.json",
        help="JSON output path (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dataset seed (default: %(default)s)"
    )
    args = parser.parse_args(argv)

    rounds = 2 if args.quick else 4
    datasets = make_datasets(args.quick, args.seed)
    reference = serial_reference(datasets)

    rows, errors = [], []
    print(f"{'tenants':>8} {'reqs':>6} {'wall s':>8} {'req/s':>8} "
          f"{'hit rate':>9} {'q p95 s':>8} {'spread':>7}")
    for num_tenants in TENANT_COUNTS:
        row, responses = asyncio.run(drive(datasets, num_tenants, rounds))
        errors += check(row, responses, reference)
        rows.append(row)
        print(
            f"{row['tenants']:>8} {row['requests']:>6} {row['wall_seconds']:>8.3f} "
            f"{row['requests_per_second']:>8.1f} {row['cache_hit_rate']:>9.2%} "
            f"{row['queue_p95_seconds']:>8.3f} {row['fairness_spread']:>7.3f}"
        )

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "seed": args.seed,
                "rounds_per_tenant": rounds,
                "num_points": {k: len(v) for k, v in datasets.items()},
                "rows": rows,
            },
            indent=2,
        )
    )
    print(f"\nwrote {out}")

    if errors:
        print("\nFAILED properties:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("\nall cross-checks passed: every served response pair-identical to "
          "the direct Runner, cache hits earned, fairness spread in band")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Side-by-side with the paper's published numbers (Table V + Figure 13).

The single place where "paper said / we measured" is printed together and
the headline bands are asserted. Ratios and orderings are compared —
absolute seconds belong to different machines (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import build_report, run_gpu_cell

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.paper_reference import (
    PAPER_HEADLINE_SPEEDUPS,
    PAPER_TABLE5,
    headline_bands,
)
from repro.core import PRESETS
from repro.util import Table

# paper dataset -> (bench selected eps) mapping from the registry
_SELECTED = EXPERIMENTS["table5"].selected_eps


@pytest.mark.parametrize("cell", PAPER_TABLE5, ids=lambda c: c.dataset)
def test_table5_cell_directions(benchmark, ctx, cell):
    """Per-cell comparison with the paper's Table V: WEE direction and
    speedup direction must match (gain where the paper gained, parity
    where the paper saw parity)."""
    eps = _SELECTED[cell.dataset]
    base = run_gpu_cell(benchmark, ctx, cell.dataset, eps, "gpucalcglobal")
    queue = ctx.model.estimate(
        ctx.profile(cell.dataset, eps),
        PRESETS["workqueue_k8"].with_(batch_result_capacity=10_000_000),
    )
    measured_speedup = base.total_seconds / queue.total_seconds
    benchmark.extra_info.update(
        dataset=cell.dataset,
        paper_speedup=round(cell.speedup, 2),
        measured_speedup=round(measured_speedup, 2),
    )
    if cell.speedup > 1.1:  # the paper gained clearly -> we must gain
        assert measured_speedup > 1.0, cell.dataset
    else:  # paper parity (Unif6D) -> we must not gain dramatically
        assert measured_speedup < 2.0, cell.dataset


def test_report_paper_comparison(ctx, capsys):
    t = Table(
        [
            "dataset",
            "paper WEE (base->queue)",
            "measured WEE",
            "paper speedup",
            "measured speedup",
        ],
        title="Table V: paper vs measured (WORKQUEUE k=8 over GPUCALCGLOBAL)",
    )
    for cell in PAPER_TABLE5:
        eps = _SELECTED[cell.dataset]
        profile = ctx.profile(cell.dataset, eps)
        base = ctx.model.estimate(
            profile, PRESETS["gpucalcglobal"].with_(batch_result_capacity=10_000_000)
        )
        queue = ctx.model.estimate(
            profile, PRESETS["workqueue_k8"].with_(batch_result_capacity=10_000_000)
        )
        t.add_row(
            [
                cell.dataset,
                f"{cell.baseline_wee:.1f}% -> {cell.optimized_wee:.1f}%",
                f"{100 * base.warp_execution_efficiency:.1f}% -> "
                f"{100 * queue.warp_execution_efficiency:.1f}%",
                f"{cell.speedup:.2f}x",
                f"{base.total_seconds / queue.total_seconds:.2f}x",
            ]
        )
    with capsys.disabled():
        print("\n" + t.render())


def test_headline_bands(ctx, capsys):
    """Figure 13's averages must land within the documented bands of the
    paper's 2.5x / 1.6x averages."""
    report = build_report(ctx, "fig13", selected_only=False)
    lines = []
    for baseline in ("superego", "gpucalcglobal"):
        sp = report.speedups(baseline)
        vals = np.array([v["combined"] for v in sp.values() if "combined" in v])
        lo, hi = headline_bands(baseline)
        lines.append(
            f"vs {baseline}: paper avg "
            f"{PAPER_HEADLINE_SPEEDUPS[baseline]['avg']}x, measured avg "
            f"{vals.mean():.2f}x (band [{lo:.2f}, {hi:.2f}])"
        )
        assert lo <= vals.mean() <= hi, lines[-1]
    with capsys.disabled():
        print("\n" + "\n".join(lines))

"""Table V — WEE and time: GPUCALCGLOBAL vs WORKQUEUE with k = 8.

Paper observation: the work-queue configuration shows by far the highest
warp execution efficiency — packing warps with equal workloads and issuing
them most-work-first nearly eliminates intra-warp idling on skewed data.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("table5", selected_only=True))
def test_table5_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert 0 < run.warp_execution_efficiency <= 1


def test_report_table5(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "table5"), kwargs=dict(selected_only=True),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    by_cell = {}
    for r in report.rows:
        by_cell.setdefault((r.dataset, r.epsilon), {})[r.config] = r
    for (ds, eps), rows in by_cell.items():
        assert (
            rows["workqueue_k8"].wee_percent > rows["gpucalcglobal"].wee_percent
        ), (ds, eps)
        # on the skewed datasets the queue must also win on time
        if ds.startswith("Expo"):
            assert rows["workqueue_k8"].seconds < rows["gpucalcglobal"].seconds, ds

"""Table IV — WEE and time: k = 1 vs k = 8 at the selected ε.

Paper observation: k = 8 always raises warp execution efficiency (the k
threads of a query share its workload, shrinking intra-warp variance),
even in the Unif6D case where its response time is worse.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("table4", selected_only=True))
def test_table4_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert 0 < run.warp_execution_efficiency <= 1


def test_report_table4(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "table4"), kwargs=dict(selected_only=True),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    by_cell = {}
    for r in report.rows:
        by_cell.setdefault((r.dataset, r.epsilon), {})[r.config] = r
    for cell, rows in by_cell.items():
        assert rows["k8"].wee_percent > rows["gpucalcglobal"].wee_percent, cell

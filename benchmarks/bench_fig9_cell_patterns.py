"""Figure 9 — response time vs ε for the three cell access patterns.

Regenerates the paper's four subfigures (Expo2D, Expo6D, Unif2D, Unif6D)
as response-time series over the ε sweep for GPUCALCGLOBAL, UNICOMP and
LID-UNICOMP (k = 1).

Expected shape (paper Section IV-C): the half-patterns roughly halve the
distance computations; LID-UNICOMP is the fastest in most scenarios, with
UNICOMP occasionally regressing to GPUCALCGLOBAL on heavy exponential
workloads.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("fig9", selected_only=False))
def test_fig9_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert run.total_seconds > 0


def test_report_fig9(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "fig9"), kwargs=dict(selected_only=False),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())
    # shape assertion: LID-UNICOMP never slower than GPUCALCGLOBAL by more
    # than a whisker, and strictly faster on the heavy exponential sweeps
    from conftest import times_by_config

    from repro.bench.experiments import EXPERIMENTS

    spec = EXPERIMENTS["fig9"]
    lid_wins = 0
    cells = 0
    for ds in spec.datasets:
        for eps in spec.eps[ds]:
            t = times_by_config(report, ds, eps)
            cells += 1
            if t["lidunicomp"] <= t["gpucalcglobal"] * 1.02:
                lid_wins += 1
    assert lid_wins >= cells * 0.75, "LID-UNICOMP should win in most scenarios"

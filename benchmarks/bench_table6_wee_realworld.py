"""Table VI — WEE and time on the real-world datasets.

Paper observation: every work-queue configuration shows a better WEE and
response time than GPUCALCGLOBAL, confirming WEE as a proxy for load
imbalance on real data.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("table6", selected_only=True))
def test_table6_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert 0 < run.warp_execution_efficiency <= 1


def test_report_table6(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "table6"), kwargs=dict(selected_only=True),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    by_cell = {}
    for r in report.rows:
        by_cell.setdefault((r.dataset, r.epsilon), {})[r.config] = r
    for cell, rows in by_cell.items():
        base = rows["gpucalcglobal"]
        assert rows["workqueue"].wee_percent > base.wee_percent, cell
        assert rows["workqueue"].seconds <= base.seconds * 1.05, cell

"""Figure 11 — response time vs ε: SORTBYWL and WORKQUEUE vs GPUCALCGLOBAL.

Expected shape (paper Section IV-C): clear gains on the exponentially
distributed datasets — growing with ε as workload variance grows — and no
significant effect on the uniform datasets, where every point already has
a similar workload. WORKQUEUE ≥ SORTBYWL (it adds the forced most-work-
first execution order on top of the same warp packing).
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell, times_by_config

import pytest

from repro.bench.experiments import EXPERIMENTS


@pytest.mark.parametrize("dataset,eps,config", cells_of("fig11", selected_only=False))
def test_fig11_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert run.total_seconds > 0


def test_report_fig11(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "fig11"), kwargs=dict(selected_only=False),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    spec = EXPERIMENTS["fig11"]
    # exponential data, heaviest ε: the queue must beat the baseline
    for ds in ("Expo2D2M", "Expo6D2M"):
        eps = spec.eps[ds][-1]
        t = times_by_config(report, ds, eps)
        assert t["workqueue"] < t["gpucalcglobal"], ds
    # uniform data: no large effect either way (within 25%)
    for ds in ("Unif2D2M",):
        for eps in spec.eps[ds]:
            t = times_by_config(report, ds, eps)
            assert t["workqueue"] <= t["gpucalcglobal"] * 1.25, (ds, eps)

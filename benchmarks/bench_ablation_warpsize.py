"""Ablation — warp size sensitivity.

The paper's optimizations exist because 32 threads execute in lock-step.
Sweeping the simulated warp size quantifies that premise: with 1-thread
"warps" there is no intra-warp imbalance and the baseline catches up with
the work-queue; wider warps amplify the gap.
"""

from __future__ import annotations

import pytest

from repro.core import PRESETS
from repro.perfmodel import PerformanceModel
from repro.simt import DeviceSpec
from repro.util import Table, format_seconds

DS, EPS = "Expo2D2M", 0.01
WARP_SIZES = (1, 8, 32, 64)


def device_with_warp(ws: int) -> DeviceSpec:
    # hold lane count (ws * slots) constant so throughput is comparable;
    # bench-scaled SM count (see repro.bench.experiments.bench_device)
    return DeviceSpec(
        name=f"sim-warp{ws}", warp_size=ws, num_sms=14, warps_per_sm_slot=max(1, 64 // ws)
    )


@pytest.mark.parametrize("warp_size", WARP_SIZES)
@pytest.mark.parametrize("config", ["gpucalcglobal", "workqueue"])
def test_warp_size(benchmark, ctx, warp_size, config):
    model = PerformanceModel(device=device_with_warp(warp_size), seed=0)
    profile = ctx.profile(DS, EPS)
    cfg = PRESETS[config].with_(batch_result_capacity=2_000_000)
    run = benchmark.pedantic(
        model.estimate, args=(profile, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        warp_size=warp_size,
        config=config,
        simulated_seconds=run.total_seconds,
        wee_percent=round(100 * run.warp_execution_efficiency, 2),
    )


def test_report_warpsize(ctx, capsys):
    profile = ctx.profile(DS, EPS)
    t = Table(
        ["warp size", "baseline time", "baseline WEE", "queue time", "queue WEE"],
        title=f"Warp-size ablation — {DS} eps={EPS}",
    )
    gaps = {}
    for ws in WARP_SIZES:
        model = PerformanceModel(device=device_with_warp(ws), seed=0)
        base = model.estimate(
            profile, PRESETS["gpucalcglobal"].with_(batch_result_capacity=2_000_000)
        )
        queue = model.estimate(
            profile, PRESETS["workqueue"].with_(batch_result_capacity=2_000_000)
        )
        gaps[ws] = base.kernel_seconds / queue.kernel_seconds
        t.add_row(
            [
                ws,
                format_seconds(base.total_seconds),
                f"{100 * base.warp_execution_efficiency:.1f}%",
                format_seconds(queue.total_seconds),
                f"{100 * queue.warp_execution_efficiency:.1f}%",
            ]
        )
    with capsys.disabled():
        print("\n" + t.render())
    # lock-step is the whole story: wide warps must show a larger
    # baseline-vs-queue gap than 1-thread warps
    assert gaps[32] > gaps[1]

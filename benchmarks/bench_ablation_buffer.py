"""Ablation — result buffer capacity bs.

The paper fixes bs = 1e8 pairs. Sweeping the (bench-scaled) capacity shows
the trade-off the batching scheme navigates: small buffers → many batches
→ launch/pipeline overhead; huge buffers → no transfer overlap (and, on a
real device, memory pressure).
"""

from __future__ import annotations

import pytest

from repro.core import PRESETS
from repro.util import Table, format_seconds

DS, EPS = "Expo2D2M", 0.01
CAPACITIES = (200_000, 500_000, 2_000_000, 20_000_000)


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_buffer_capacity(benchmark, ctx, capacity):
    profile = ctx.profile(DS, EPS)
    cfg = PRESETS["workqueue"].with_(batch_result_capacity=capacity)
    run = benchmark.pedantic(
        ctx.model.estimate, args=(profile, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        capacity=capacity,
        batches=run.num_batches,
        simulated_seconds=run.total_seconds,
    )
    assert run.num_batches >= 1


def test_report_buffer(ctx, capsys):
    profile = ctx.profile(DS, EPS)
    t = Table(
        ["capacity (pairs)", "batches", "simulated time"],
        title=f"Buffer-capacity ablation — {DS} eps={EPS}, WORKQUEUE",
    )
    runs = []
    for cap in CAPACITIES:
        cfg = PRESETS["workqueue"].with_(batch_result_capacity=cap)
        run = ctx.model.estimate(profile, cfg)
        runs.append(run)
        t.add_row([cap, run.num_batches, format_seconds(run.total_seconds)])
    with capsys.disabled():
        print("\n" + t.render())
    # more capacity -> no more batches
    batch_counts = [r.num_batches for r in runs]
    assert batch_counts == sorted(batch_counts, reverse=True)

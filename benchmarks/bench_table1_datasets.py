"""Table I — dataset inventory: generation benchmarks + the summary table.

The paper's Table I lists each dataset's size and dimensionality; this
bench regenerates the (bench-scaled) inventory and times the generators.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import DEFAULT_SIZES, bench_size, load_bench_dataset
from repro.data import CATALOG
from repro.util import Table


@pytest.mark.parametrize("name", sorted(DEFAULT_SIZES))
def test_generate_dataset(benchmark, name):
    pts = benchmark.pedantic(
        load_bench_dataset, args=(name,), kwargs=dict(seed=0), rounds=3, iterations=1
    )
    entry = CATALOG[name]
    assert pts.shape == (bench_size(name), entry.ndim)
    benchmark.extra_info.update(
        dataset=name, paper_size=entry.paper_size, ndim=entry.ndim
    )


def test_render_table1(capsys):
    t = Table(
        ["dataset", "n", "paper |D|", "bench |D|", "distribution"],
        title="Table I — dataset summary (bench scale)",
    )
    for name in sorted(DEFAULT_SIZES):
        e = CATALOG[name]
        t.add_row([name, e.ndim, e.paper_size, bench_size(name), e.distribution])
    with capsys.disabled():
        print("\n" + t.render())

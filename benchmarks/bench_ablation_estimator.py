"""Ablation — result-size estimator sampling rate.

The paper fixes 1 % sampling. This bench sweeps the rate and reports
estimate error and the resulting batch counts for both estimator variants
(strided vs head-of-D'), confirming the head estimator's deliberate
overestimation at every rate.
"""

from __future__ import annotations

import pytest

from repro.util import Table

DS, EPS = "Expo2D2M", 0.01
RATES = (0.001, 0.01, 0.05, 0.2)


@pytest.mark.parametrize("rate", RATES)
def test_strided_estimator(benchmark, ctx, rate):
    profile = ctx.profile(DS, EPS)
    est = benchmark.pedantic(
        profile.estimate_strided, args=(rate,), rounds=3, iterations=1
    )
    true = profile.total_result_size()
    benchmark.extra_info.update(
        rate=rate, estimate=est, true=true, rel_error=round(est / true - 1, 4)
    )
    assert 0.3 * true <= est <= 3.0 * true


@pytest.mark.parametrize("rate", RATES)
def test_head_estimator_overestimates(benchmark, ctx, rate):
    profile = ctx.profile(DS, EPS)
    est = benchmark.pedantic(
        profile.estimate_head, args=(rate, "full"), rounds=3, iterations=1
    )
    true = profile.total_result_size()
    benchmark.extra_info.update(rate=rate, estimate=est, true=true)
    assert est >= true, "head-of-D' sampling must overestimate (safety property)"


def test_report_estimator(ctx, capsys):
    profile = ctx.profile(DS, EPS)
    true = profile.total_result_size()
    t = Table(
        ["rate", "strided est", "strided err", "head est", "head over-factor"],
        title=f"Estimator ablation — {DS} eps={EPS} (true |R|={true})",
    )
    for rate in RATES:
        s = profile.estimate_strided(rate)
        h = profile.estimate_head(rate, "full")
        t.add_row([rate, s, f"{s / true - 1:+.2%}", h, f"{h / true:.2f}x"])
    with capsys.disabled():
        print("\n" + t.render())

#!/usr/bin/env python
"""Native array engine vs the vectorized VM, plus the mmap/process-pool
scale drill.

Thin shim over the unified harness: runs suite ``native``
through :mod:`repro.bench.executors` with the shared CLI
(``--size/--seed/--trials/--filter/--json``; ``--quick`` = tiny).
Equivalent to::

    python -m repro.bench suite run native --size small

The ``mmap_process_scale`` experiment (5M points, ``mmap=True`` dataset,
``workers="process"`` shards) only engages at ``--size full``; below that
it reports itself as skipped. Exits nonzero if any correctness
cross-check fails.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.cli import standalone_main

if __name__ == "__main__":
    sys.exit(standalone_main("native"))

"""Ablation — robustness of the headline orderings to cost constants.

EXPERIMENTS.md documents two calibrated throughput constants. This bench
perturbs *every* cost constant ×0.5 / ×2 and asserts the paper's two core
orderings never flip on the skewed workload:

- WORKQUEUE faster than GPUCALCGLOBAL,
- LID-UNICOMP faster than GPUCALCGLOBAL.
"""

from __future__ import annotations

import pytest

from repro.core import PRESETS
from repro.perfmodel.sensitivity import sweep_cost_sensitivity

DS, EPS = "Expo2D2M", 0.01

PAIRS = {
    "queue-vs-baseline": ("workqueue", "gpucalcglobal"),
    "lid-vs-baseline": ("lidunicomp", "gpucalcglobal"),
}


@pytest.mark.parametrize("pair", sorted(PAIRS))
def test_ordering_robust(benchmark, ctx, pair):
    fast, slow = PAIRS[pair]
    profile = ctx.profile(DS, EPS)
    report = benchmark.pedantic(
        sweep_cost_sensitivity,
        args=(profile, {fast: PRESETS[fast], slow: PRESETS[slow]}),
        kwargs=dict(device=ctx.model.device),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        pair=pair,
        baseline_order=report.baseline_order,
        flips=len(report.flips),
        cells=report.cells_checked,
    )
    assert report.baseline_order[0] == fast
    assert report.is_robust, report.render()


def test_report_sensitivity(ctx, capsys):
    profile = ctx.profile(DS, EPS)
    report = sweep_cost_sensitivity(
        profile,
        {name: PRESETS[name] for name in ("gpucalcglobal", "lidunicomp", "workqueue")},
        device=ctx.model.device,
    )
    with capsys.disabled():
        print("\n" + report.render())
    assert report.baseline_order[-1] == "gpucalcglobal"

#!/usr/bin/env python
"""WEE by cell-access pattern (paper Table 3).

Thin shim over the unified harness: runs suite ``paper`` filtered to ``table3``
through :mod:`repro.bench.executors` with the shared CLI
(``--size/--seed/--trials/--filter/--json``; ``--quick`` = tiny).
Equivalent to::

    python -m repro.bench suite run paper --size small --filter table3

Exits nonzero if any correctness cross-check fails.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.cli import standalone_main

if __name__ == "__main__":
    sys.exit(standalone_main("paper", pattern="table3"))

"""Table III — warp execution efficiency and time of the access patterns.

Paper's observations to reproduce:

- GPUCALCGLOBAL can show a *higher* WEE than the half-patterns while being
  slower (it computes ~2x the distances);
- LID-UNICOMP's WEE exceeds UNICOMP's (its per-cell comparison count is
  constant over inner cells; UNICOMP's parity pattern varies 0..3**n - 1).
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("table3", selected_only=True))
def test_table3_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert 0 < run.warp_execution_efficiency <= 1


def test_report_table3(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "table3"), kwargs=dict(selected_only=True),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    by_cell = {}
    for r in report.rows:
        by_cell.setdefault((r.dataset, r.epsilon), {})[r.config] = r
    for cell, rows in by_cell.items():
        # LID-UNICOMP balances the per-cell comparisons UNICOMP skews
        assert rows["lidunicomp"].wee_percent > rows["unicomp"].wee_percent, cell
        # and is never materially slower
        assert rows["lidunicomp"].seconds <= rows["gpucalcglobal"].seconds * 1.05, cell

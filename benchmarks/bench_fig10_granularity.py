"""Figure 10 — response time vs ε: k = 1 vs k = 8 (GPUCALCGLOBAL kernel).

Expected shape (paper Section IV-C): k = 8 pays off on heavy skewed
workloads (Expo2D at large ε), is roughly neutral at small ε, and *hurts*
on Unif6D where every thread re-pays the ≤3**6-cell traversal for tiny
per-cell candidate counts.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_gpu_cell, times_by_config

import pytest

from repro.bench.experiments import EXPERIMENTS


@pytest.mark.parametrize("dataset,eps,config", cells_of("fig10", selected_only=False))
def test_fig10_cell(benchmark, ctx, dataset, eps, config):
    run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
    assert run.total_seconds > 0


def test_report_fig10(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "fig10"), kwargs=dict(selected_only=False),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    spec = EXPERIMENTS["fig10"]
    # heavy exponential 2-D: k=8 must win at the top of the sweep
    heavy_eps = spec.eps["Expo2D2M"][-1]
    t = times_by_config(report, "Expo2D2M", heavy_eps)
    assert t["k8"] < t["gpucalcglobal"]
    # Unif6D: the cell-traversal duplication makes k=8 slower (paper's
    # noted anomaly, reproduced)
    for eps in spec.eps["Unif6D2M"]:
        t = times_by_config(report, "Unif6D2M", eps)
        assert t["k8"] > t["gpucalcglobal"], f"Unif6D eps={eps}"

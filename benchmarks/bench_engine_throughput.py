"""Engine throughput: the bulk-lane vectorized engine vs the interpreter.

Runs identical self-joins through both execution engines of the SIMT VM —
``engine="interpreted"`` (the thread-at-a-time reference) and
``engine="vectorized"`` (the bulk-lane fast path, :mod:`repro.simt.vectorized`)
— at ``bench_fig9_cell_patterns.py`` scale, across the representative
optimization presets (static, SORTBYWL, WORKQUEUE, k > 1, combined).

Every row is an equivalence check, not just a stopwatch: the two engines
must agree on the pairs *in buffer order*, on every batch's simulated
cycles, seconds and warp execution efficiency, and on the end-to-end
pipeline time. The script exits nonzero if any row diverges, or if the
vectorized engine fails to be faster in aggregate — the acceptance
property of the engine.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.experiments import load_bench_dataset
from repro.core import SelfJoin
from repro.core.config import PRESETS
from repro.grid import GridIndex
from repro.runtime import RuntimeConfig

#: presets spanning the optimization space: baseline, half-pattern,
#: sorted + k-striding, WORKQUEUE with coop fetch, and everything at once
CONFIG_NAMES = (
    "gpucalcglobal",
    "lidunicomp",
    "sortbywl",
    "workqueue_k8",
    "combined",
)

#: fig9 datasets at mid-sweep ε — a populated grid with tens-to-hundreds
#: of candidates per query, the regime the paper's figures sweep across
DATASETS = (
    ("Expo2D2M", 0.01),
    ("Unif2D2M", 0.4),
)


def run_row(index: GridIndex, config_name: str, seed: int, reps: int) -> dict:
    cfg = PRESETS[config_name]
    timings: dict[str, float] = {}
    results = {}
    for engine in ("interpreted", "vectorized"):
        join = SelfJoin(
            runtime=RuntimeConfig(optimization=cfg, seed=seed, engine=engine)
        )
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            results[engine] = join.execute_on_index(index)
            best = min(best, time.perf_counter() - t0)
        timings[engine] = best
    return {
        "config": config_name,
        "results": results,
        "interpreted_seconds": timings["interpreted"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": timings["interpreted"] / max(timings["vectorized"], 1e-9),
    }


def check_row(row: dict) -> list[str]:
    """Exact-equivalence gate: any mismatch is a correctness failure."""
    a = row["results"]["interpreted"]
    b = row["results"]["vectorized"]
    where = f"{row['dataset']} {row['config']}"
    errors = []
    if not np.array_equal(a.pairs, b.pairs):
        errors.append(f"pair mismatch (buffer order): {where}")
    if len(a.batch_stats) != len(b.batch_stats):
        errors.append(f"batch count mismatch: {where}")
    else:
        for i, (sa, sb) in enumerate(zip(a.batch_stats, b.batch_stats)):
            if (sa.cycles, sa.seconds, sa.warp_execution_efficiency) != (
                sb.cycles,
                sb.seconds,
                sb.warp_execution_efficiency,
            ):
                errors.append(f"batch {i} metric mismatch: {where}")
                break
    if a.total_seconds != b.total_seconds:
        errors.append(f"pipeline time mismatch: {where}")
    return errors


def checksum(result) -> str:
    """Order-sensitive digest of the result pairs — the equivalence witness."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(result.pairs, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: smaller datasets"
    )
    parser.add_argument(
        "--out",
        default="results/engine_throughput.json",
        help="JSON output path (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for datasets and issue-order shuffles (default: %(default)s)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions per engine, best-of (default: 1 quick, 2 full)",
    )
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (1 if args.quick else 2)
    size = 1500 if args.quick else None  # None = full bench_fig9 scale
    rows = []
    errors: list[str] = []
    header = (
        f"{'dataset':>10} {'config':>14} {'pairs':>9} "
        f"{'interp (s)':>11} {'vector (s)':>11} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for dataset, eps in DATASETS:
        points = load_bench_dataset(dataset, size=size, seed=args.seed)
        index = GridIndex(points, eps)
        for config_name in CONFIG_NAMES:
            row = run_row(index, config_name, args.seed, reps)
            row["dataset"] = dataset
            row["epsilon"] = eps
            row["num_points"] = len(points)
            errors += check_row(row)
            result = row.pop("results")["vectorized"]
            row["num_pairs"] = int(len(result.pairs))
            row["num_batches"] = len(result.batch_stats)
            row["checksum"] = checksum(result)
            rows.append(row)
            print(
                f"{dataset:>10} {config_name:>14} {row['num_pairs']:>9} "
                f"{row['interpreted_seconds']:>11.3f} "
                f"{row['vectorized_seconds']:>11.3f} "
                f"{row['speedup']:>7.1f}x"
            )

    speedups = np.array([r["speedup"] for r in rows])
    geomean = float(np.exp(np.log(speedups).mean()))
    print(f"\ngeomean speedup: {geomean:.1f}x  (min {speedups.min():.1f}x, "
          f"max {speedups.max():.1f}x)")
    if geomean <= 1.0:
        errors.append(f"vectorized engine not faster: geomean {geomean:.2f}x")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "seed": args.seed,
                "configs": list(CONFIG_NAMES),
                "geomean_speedup": geomean,
                "min_speedup": float(speedups.min()),
                "max_speedup": float(speedups.max()),
                "rows": rows,
            },
            indent=2,
        )
    )
    print(f"wrote {out}")

    if errors:
        print("\nFAILED properties:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("\nall cross-checks passed: both engines bit-identical on pairs, "
          "cycles and pipeline times; vectorized faster in aggregate")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 13 — speedup summary of the combined optimizations.

Regenerates the paper's headline figure: speedup of WORKQUEUE +
LID-UNICOMP + k8 over (a) SUPER-EGO and (b) GPUCALCGLOBAL across all
datasets. The paper reports up to 10.7x / avg 2.5x vs SUPER-EGO and up to
9.7x / avg 1.6x vs GPUCALCGLOBAL; at bench scale the *averages* land in
the same bands (the extremes compress because the bench datasets carry
milder skew than 2M+-point originals).
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_cpu_cell, run_gpu_cell

import numpy as np
import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("fig13", selected_only=False))
def test_fig13_cell(benchmark, ctx, dataset, eps, config):
    if config == "superego":
        row = run_cpu_cell(benchmark, ctx, dataset, eps)
        assert row.seconds > 0
    else:
        run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
        assert run.total_seconds > 0


def test_report_fig13(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "fig13"), kwargs=dict(selected_only=False),
        rounds=1, iterations=1,
    )
    lines = [report.render(), "", "Speedups of `combined`:"]
    stats = {}
    for base in ("superego", "gpucalcglobal"):
        sp = report.speedups(base)
        vals = np.array([v["combined"] for v in sp.values() if "combined" in v])
        stats[base] = vals
        lines.append(
            f"  vs {base}: avg {vals.mean():.2f}x, max {vals.max():.2f}x, "
            f"min {vals.min():.2f}x  (paper: avg "
            f"{'2.5x, max 10.7x' if base == 'superego' else '1.6x, max 9.7x'})"
        )
    with capsys.disabled():
        print("\n" + "\n".join(lines))

    # the headline claims, at bench scale: average speedup > 1 on both
    # baselines, with meaningful peaks
    assert stats["superego"].mean() > 1.3
    assert stats["gpucalcglobal"].mean() > 1.2
    assert stats["gpucalcglobal"].max() > 2.0

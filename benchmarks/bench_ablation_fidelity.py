"""Ablation — warp replay fidelity: aggregate vs lockstep.

The analytic model (and the VM's default replay) assume threads
reconverge at control-flow region boundaries; the `lockstep` replay
serializes event by event, an upper bound on real divergence cost. This
bench quantifies the gap on a skewed workload and — the important part —
verifies the paper's conclusions are fidelity-invariant: the work-queue
beats the baseline under *both* replay semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import bench_device
from repro.core import PRESETS, SelfJoin
from repro.util import Table

from conftest import BenchContext  # noqa: F401  (shared session fixture module)

N = 3000


@pytest.fixture(scope="module")
def skewed_points():
    rng = np.random.default_rng(12)
    return np.concatenate(
        [rng.normal(1.2, 0.15, (N // 2, 2)), rng.uniform(0, 6, (N // 2, 2))]
    )


@pytest.mark.parametrize("mode", ["aggregate", "lockstep"])
@pytest.mark.parametrize("preset", ["gpucalcglobal", "workqueue"])
def test_replay_mode(benchmark, skewed_points, mode, preset):
    join = SelfJoin(PRESETS[preset], device=bench_device(), seed=3, replay_mode=mode)
    res = benchmark.pedantic(join.execute, args=(skewed_points, 0.3), rounds=1, iterations=1)
    benchmark.extra_info.update(
        mode=mode,
        preset=preset,
        kernel_seconds=res.kernel_seconds,
        wee_percent=round(100 * res.warp_execution_efficiency, 2),
    )


def test_report_fidelity(skewed_points, capsys):
    t = Table(
        ["preset", "aggregate kernel", "lockstep kernel", "gap"],
        title="Replay-fidelity ablation (skewed 2-D)",
    )
    times = {}
    for preset in ("gpucalcglobal", "workqueue"):
        row = [preset]
        for mode in ("aggregate", "lockstep"):
            res = SelfJoin(
                PRESETS[preset], device=bench_device(), seed=3, replay_mode=mode
            ).execute(skewed_points, 0.3)
            times[(preset, mode)] = res.kernel_seconds
            row.append(f"{res.kernel_seconds:.3e}s")
        row.append(
            f"{times[(preset, 'lockstep')] / times[(preset, 'aggregate')]:.2f}x"
        )
        t.add_row(row)
    with capsys.disabled():
        print("\n" + t.render())

    for preset in ("gpucalcglobal", "workqueue"):
        assert times[(preset, "lockstep")] >= times[(preset, "aggregate")]
    # fidelity-invariance of the paper's conclusion
    for mode in ("aggregate", "lockstep"):
        assert times[("workqueue", mode)] < times[("gpucalcglobal", mode)]

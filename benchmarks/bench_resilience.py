"""Fault-injection drill: kill devices mid-run and prove the answer holds.

Runs the sharded self-join over a 4-device pool under a battery of seeded
fault scenarios — a device killed at its second shard, a 6× straggler, a
flaky device with transient kernel errors, forced result-buffer
overflows, and all of them at once — and checks the two acceptance
properties of the resilience subsystem:

1. **pair identity** — under every scenario, the merged result is
   pair-for-pair identical to the fault-free single-device join;
2. **replay determinism** — re-running a scenario with the same seed
   reproduces the identical ``ScheduleTrace`` (same events, same kinds,
   same times).

Each scenario also prints its :class:`~repro.profiling.ResilienceReport`
(retries, requeues, speculative wins, wasted device-seconds, degraded
makespan) and everything lands in a JSON file. Exits nonzero if any
property fails — this is the CI fault-injection smoke.

Standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_resilience.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core import OptimizationConfig, SelfJoin
from repro.data.adversarial import dense_core_sparse_halo
from repro.data.synthetic import exponential
from repro.multigpu import MultiGpuSelfJoin
from repro.profiling import resilience_report
from repro.resilience import (
    DeviceFailure,
    FaultPlan,
    ForcedOverflow,
    RecoveryPolicy,
    Straggler,
    TransientFaults,
)
from repro.runtime import RuntimeConfig, ShardingConfig
from repro.simt import DeviceSpec

SMALL_DEVICE = DeviceSpec(name="sim-small", num_sms=4, warps_per_sm_slot=2)
NUM_DEVICES = 4


def make_scenarios(seed: int) -> dict[str, FaultPlan]:
    return {
        "fault_free": FaultPlan(seed=seed),
        "kill_one_mid_run": FaultPlan(
            seed=seed, failures=[DeviceFailure(device_id=1, at_shard=1)]
        ),
        "kill_two": FaultPlan(
            seed=seed,
            failures=[
                DeviceFailure(device_id=0, at_shard=1),
                DeviceFailure(device_id=2, at_shard=0),
            ],
        ),
        "straggler_6x": FaultPlan(
            seed=seed, stragglers=[Straggler(device_id=3, slowdown=6.0)]
        ),
        "flaky_device": FaultPlan(
            seed=seed,
            transients=[
                TransientFaults(device_id=2, probability=0.7, max_failures=3)
            ],
        ),
        "forced_overflow": FaultPlan(
            seed=seed,
            overflows=[ForcedOverflow(device_id=0, times=2, clamp_capacity=32)],
        ),
        "everything_at_once": FaultPlan(
            seed=seed,
            failures=[DeviceFailure(device_id=3, at_shard=1)],
            stragglers=[Straggler(device_id=2, slowdown=4.0)],
            transients=[
                TransientFaults(device_id=1, probability=0.5, max_failures=2)
            ],
            overflows=[ForcedOverflow(device_id=0, times=1, clamp_capacity=64)],
        ),
    }


def make_datasets(quick: bool, seed: int) -> dict[str, tuple[np.ndarray, float]]:
    n = 400 if quick else 1500
    return {
        "expo": (exponential(n, 2, seed=seed + 1), 0.02),
        "dense_core": (dense_core_sparse_halo(n, 2, seed=seed + 2), 0.9),
    }


def run_scenarios(datasets, scenarios, config, seed: int):
    rows: list[dict] = []
    errors: list[str] = []
    for ds_name, (points, eps) in datasets.items():
        reference = SelfJoin(config, device=SMALL_DEVICE, seed=seed).execute(
            points, eps
        )
        ref_pairs = reference.sorted_pairs()
        for sc_name, plan in scenarios.items():
            def run_once():
                return MultiGpuSelfJoin(
                    runtime=RuntimeConfig(
                        optimization=config,
                        sharding=ShardingConfig(num_devices=NUM_DEVICES),
                        device=SMALL_DEVICE,
                        seed=seed,
                        fault_plan=plan,
                        recovery=RecoveryPolicy(),
                    )
                ).execute(points, eps)

            result = run_once()
            replay = run_once()

            pair_ok = np.array_equal(result.sorted_pairs(), ref_pairs)
            trace_ok = result.trace.signature() == replay.trace.signature()
            if not pair_ok:
                errors.append(f"pair mismatch: {ds_name} / {sc_name}")
            if not trace_ok:
                errors.append(f"non-deterministic trace: {ds_name} / {sc_name}")

            rep = resilience_report(result)
            print(f"\n=== {ds_name} / {sc_name}  [{plan.describe()}] ===")
            print(rep.render())
            status = "ok" if pair_ok and trace_ok else "FAILED"
            print(f"pairs identical: {pair_ok}  |  trace replays: {trace_ok}"
                  f"  ->  {status}")
            rows.append(
                {
                    "dataset": ds_name,
                    "scenario": sc_name,
                    "faults": plan.describe(),
                    "pair_identical": pair_ok,
                    "trace_deterministic": trace_ok,
                    "makespan_seconds": result.makespan_seconds,
                    "fault_free_makespan_hint": None,
                    **rep.to_record(),
                }
            )
    # annotate degraded-mode slowdown relative to the fault-free pool run
    by_ds: dict[str, float] = {
        r["dataset"]: r["makespan_seconds"]
        for r in rows
        if r["scenario"] == "fault_free"
    }
    for r in rows:
        base = by_ds.get(r["dataset"])
        r["fault_free_makespan_hint"] = base
        r["slowdown_vs_fault_free"] = (
            r["makespan_seconds"] / base if base else None
        )
    return rows, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: smaller datasets"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="seed for datasets, executors and the fault plans' transient "
        "draws (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="results/resilience.json",
        help="JSON output path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    datasets = make_datasets(args.quick, args.seed)
    scenarios = make_scenarios(args.seed)
    config = OptimizationConfig(pattern="lidunicomp", work_queue=True, k=2)

    rows, errors = run_scenarios(datasets, scenarios, config, args.seed)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "seed": args.seed,
                "num_devices": NUM_DEVICES,
                "device": SMALL_DEVICE.name,
                "config": config.describe(),
                "scenarios": rows,
            },
            indent=2,
        )
    )
    print(f"\nwrote {out}")

    if errors:
        print("\nFAILED properties:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print(
        f"\nall {len(rows)} scenario runs passed: merged pairs identical to "
        "the fault-free single-device join, traces replay exactly per seed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

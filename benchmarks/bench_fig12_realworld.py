"""Figure 12 — real-world datasets: work-queue combinations vs baselines.

Regenerates the paper's five subfigures (SW2DA/B, SW3DA/B, Gaia): response
time vs ε for GPUCALCGLOBAL, SUPER-EGO and the WORKQUEUE combinations
(plain, +LID-UNICOMP, +k8, and all combined).

Expected shape: the combined optimizations beat GPUCALCGLOBAL across
nearly all scenarios, most at the largest workloads (big datasets / big
ε); SUPER-EGO is competitive at light workloads.
"""

from __future__ import annotations

from conftest import build_report, cells_of, run_cpu_cell, run_gpu_cell

import pytest


@pytest.mark.parametrize("dataset,eps,config", cells_of("fig12", selected_only=False))
def test_fig12_cell(benchmark, ctx, dataset, eps, config):
    if config == "superego":
        row = run_cpu_cell(benchmark, ctx, dataset, eps)
        assert row.seconds > 0
    else:
        run = run_gpu_cell(benchmark, ctx, dataset, eps, config)
        assert run.total_seconds > 0


def test_report_fig12(benchmark, ctx, capsys):
    report = benchmark.pedantic(
        build_report, args=(ctx, "fig12"), kwargs=dict(selected_only=True),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + report.render())

    by_cell = {}
    for r in report.rows:
        by_cell.setdefault((r.dataset, r.epsilon), {})[r.config] = r
    wins = 0
    for rows in by_cell.values():
        if rows["combined"].seconds < rows["gpucalcglobal"].seconds:
            wins += 1
    # "outperforms GPUCALCGLOBAL across nearly all experimental scenarios"
    assert wins >= 0.8 * len(by_cell), f"combined won only {wins}/{len(by_cell)}"

"""Ablation — warp issue order in isolation.

DESIGN.md calls out that WORKQUEUE = SORTBYWL's warp *composition* plus a
forced most-work-first *issue order*. This bench isolates the second
factor: identical warp durations (from the workload-sorted batch) are
scheduled under FIFO, random, and LPT (most-work-first) orders.
"""

from __future__ import annotations

from conftest import run_gpu_cell

import numpy as np
import pytest

from repro.core import PRESETS
from repro.perfmodel.warps import model_batch_warps
from repro.bench.experiments import bench_device
from repro.simt import CostParams, makespan

DS, EPS = "Expo2D2M", 0.01


@pytest.mark.parametrize("order", ["fifo", "random", "workload_desc"])
def test_issue_order_makespan(benchmark, ctx, order):
    profile = ctx.profile(DS, EPS)
    costs = CostParams()
    m = model_batch_warps(
        profile,
        profile.sorted_order("full"),
        k=1,
        pattern="full",
        costs=costs,
        work_queue=False,
    )
    durations = m.durations_with_launch(costs)
    slots = bench_device().warp_slots
    result = benchmark.pedantic(
        makespan, args=(durations, slots), kwargs=dict(order=order, seed=1),
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(
        order=order, makespan_cycles=result.makespan_cycles,
        slot_imbalance=round(result.slot_imbalance, 4),
    )


def test_lpt_beats_random_on_sorted_warps(ctx, capsys):
    profile = ctx.profile(DS, EPS)
    costs = CostParams()
    m = model_batch_warps(
        profile, profile.sorted_order("full"), k=1, pattern="full",
        costs=costs, work_queue=False,
    )
    durations = m.durations_with_launch(costs)
    slots = bench_device().warp_slots
    spans = {
        order: makespan(durations, slots, order=order, seed=1).makespan_cycles
        for order in ("fifo", "random", "workload_desc")
    }
    with capsys.disabled():
        print("\nIssue-order ablation (cycles):", {k: f"{v:.3g}" for k, v in spans.items()})
    assert spans["workload_desc"] <= spans["random"]
    # sorted data + FIFO ≈ LPT: the queue's trick. Not exactly equal —
    # warp durations also carry emission/cell-traversal costs that are not
    # perfectly monotone in the candidate workload the sort used.
    assert np.isclose(spans["workload_desc"], spans["fifo"], rtol=0.02)
    assert spans["fifo"] <= spans["random"]


def test_config_level_effect(benchmark, ctx):
    """End-to-end: workqueue (composition + order) vs sortbywl (composition
    only, random order)."""
    sort_run = ctx.model.estimate(
        ctx.profile(DS, EPS), PRESETS["sortbywl"].with_(batch_result_capacity=2_000_000)
    )
    queue_run = benchmark.pedantic(
        ctx.model.estimate,
        args=(ctx.profile(DS, EPS), PRESETS["workqueue"].with_(batch_result_capacity=2_000_000)),
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(
        sortbywl_seconds=sort_run.total_seconds,
        workqueue_seconds=queue_run.total_seconds,
    )
    assert queue_run.total_seconds <= sort_run.total_seconds * 1.02

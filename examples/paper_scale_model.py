"""Run the performance model at the paper's true scale: 2M points.

The SIMT VM executes kernels thread by thread and tops out around 10^4
points in Python; the vectorized performance model evaluates the same
cost equations with NumPy and handles the paper's real dataset sizes.
This script models Unif2D2M — two million uniform points in [0,100]² —
across the paper's own ε sweep (Figure 9(c) / Table III's selected
ε = 1.0) on the full simulated GP100 (112 warp slots), and prints modeled
times next to the paper's measured ones.

Expect a few minutes of wall time (the one-time workload profile per ε is
a full vectorized candidate pass over ~10^9–10^10 candidates).

Run:  python examples/paper_scale_model.py [--quick]
"""

from __future__ import annotations

import sys
import time

from repro import PRESETS
from repro.data import uniform
from repro.perfmodel import PerformanceModel
from repro.util import Table, format_seconds

# Paper reference points (Table III / Table V, Unif2D2M):
#   GPUCALCGLOBAL at eps=1.0: 5.7 s;  WORKQUEUE k=8: 3.9 s  (1.5x)
PAPER_TIMES = {"gpucalcglobal": 5.7, "workqueue_k8": 3.9}

CONFIGS = ("gpucalcglobal", "unicomp", "lidunicomp", "workqueue_k8", "combined")


def main() -> None:
    quick = "--quick" in sys.argv
    n = 200_000 if quick else 2_000_000
    eps_sweep = (0.4, 1.0) if quick else (0.2, 0.4, 0.6, 0.8, 1.0)
    print(f"generating Unif2D{'2M' if not quick else '200k'} ({n} points)...")
    points = uniform(n, 2, seed=0)  # the paper's [0,100]^2 domain

    model = PerformanceModel(seed=0)
    table = Table(
        ["eps", "config", "modeled time", "WEE", "batches", "|R|"],
        title=f"Unif2D, {n} points, full simulated GP100",
    )
    for eps in eps_sweep:
        t0 = time.time()
        profile = model.profile(points, eps)
        profile.neighbor_counts()
        print(f"  eps={eps}: profile built in {time.time() - t0:.1f}s "
              f"(|R| = {profile.total_result_size()})")
        for name in CONFIGS:
            run = model.estimate(profile, PRESETS[name])
            table.add_row(
                [
                    eps,
                    name,
                    format_seconds(run.total_seconds),
                    f"{100 * run.warp_execution_efficiency:.1f}%",
                    run.num_batches,
                    run.total_result_rows,
                ]
            )
    print(table.render())

    if not quick:
        print("\npaper reference (measured Quadro GP100, eps=1.0):")
        for name, t in PAPER_TIMES.items():
            print(f"  {name}: {t}s")
        print(
            "\nModeled absolute times come from calibrated throughput "
            "constants (EXPERIMENTS.md); the orderings and ratios are the "
            "reproduced quantity."
        )


if __name__ == "__main__":
    main()

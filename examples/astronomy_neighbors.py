"""Astronomy: neighbor search over a Gaia-like star catalog.

The paper evaluates on 50M Gaia stars — sky positions concentrated along
the galactic plane, the kind of skew that starves a naive GPU kernel. This
example runs the neighbor search on the Gaia-like proxy at two scales:

1. the *performance model* at catalog scale, contrasting GPUCALCGLOBAL
   with the combined optimizations (the paper's Figure 12/13 story);
2. the SIMT VM on a small excerpt, verifying the pair set exactly against
   scipy's KD-tree.

Run:  python examples/astronomy_neighbors.py
"""

from __future__ import annotations

import numpy as np

from repro import PRESETS, SelfJoin
from repro.baselines import kdtree_pairs
from repro.data import gaia_like
from repro.perfmodel import PerformanceModel
from repro.util import Table, format_seconds

EPS_DEG = 2.0  # paper uses fractions of a degree at 50M stars


def model_at_catalog_scale() -> None:
    stars = gaia_like(40_000, seed=11)
    model = PerformanceModel(seed=0)
    profile = model.profile(stars, EPS_DEG)

    table = Table(
        ["config", "simulated time", "WEE", "batches"],
        title=f"Gaia-like catalog, {len(stars)} stars, eps = {EPS_DEG} deg",
    )
    runs = {}
    for name in ("gpucalcglobal", "workqueue", "combined"):
        run = model.estimate(
            profile, PRESETS[name].with_(batch_result_capacity=2_000_000)
        )
        runs[name] = run
        table.add_row(
            [
                name,
                format_seconds(run.total_seconds),
                f"{100 * run.warp_execution_efficiency:.1f}%",
                run.num_batches,
            ]
        )
    print(table.render())
    speedup = runs["gpucalcglobal"].total_seconds / runs["combined"].total_seconds
    print(
        f"\nThe galactic-plane skew costs the baseline "
        f"{100 * runs['gpucalcglobal'].warp_execution_efficiency:.0f}% WEE; "
        f"the combined optimizations run {speedup:.1f}x faster.\n"
    )


def verify_small_excerpt() -> None:
    stars = gaia_like(1200, seed=3)
    result = SelfJoin(PRESETS["combined"]).execute(stars, EPS_DEG)
    expected = kdtree_pairs(stars, EPS_DEG)
    assert np.array_equal(result.sorted_pairs(), expected)
    print(
        f"VM verification: {result.num_pairs} neighbor pairs on a "
        f"{len(stars)}-star excerpt match scipy's KD-tree exactly."
    )


def main() -> None:
    model_at_catalog_scale()
    verify_small_excerpt()


if __name__ == "__main__":
    main()

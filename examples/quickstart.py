"""Quickstart: run the similarity self-join with each optimization preset.

Generates a skewed 2-D dataset (a dense cluster inside a sparse
background — the workload the paper's optimizations target), runs the
simulated-GPU self-join under several configurations, and prints the exact
result size together with the simulated response time and warp execution
efficiency of each.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PRESETS, SelfJoin
from repro.util import Table, format_seconds


def main() -> None:
    rng = np.random.default_rng(42)
    dense = rng.normal(loc=5.0, scale=0.4, size=(1500, 2))
    sparse = rng.uniform(0.0, 20.0, size=(1500, 2))
    points = np.concatenate([dense, sparse])
    epsilon = 0.5

    print(f"dataset: {len(points)} points in 2-D, epsilon = {epsilon}\n")

    table = Table(
        ["preset", "pairs", "batches", "simulated time", "WEE"],
        title="Self-join under the paper's optimization presets",
    )
    reference = None
    for name in (
        "gpucalcglobal",
        "unicomp",
        "lidunicomp",
        "k8",
        "sortbywl",
        "workqueue",
        "combined",
    ):
        result = SelfJoin(PRESETS[name]).execute(points, epsilon)
        if reference is None:
            reference = result.sorted_pairs()
        else:
            # every configuration returns the exact same result set
            assert np.array_equal(result.sorted_pairs(), reference)
        table.add_row(
            [
                name,
                result.num_pairs,
                result.num_batches,
                format_seconds(result.total_seconds),
                f"{100 * result.warp_execution_efficiency:.1f}%",
            ]
        )
    print(table.render())

    combined = SelfJoin(PRESETS["combined"]).execute(points, epsilon)
    neighbors = combined.neighbor_lists()
    densest = max(neighbors, key=lambda q: len(neighbors[q]))
    print(
        f"\nresult check: every preset returned {combined.num_pairs} identical "
        f"pairs;\npoint {densest} has the most neighbors "
        f"({len(neighbors[densest])}) — it sits in the dense cluster."
    )


if __name__ == "__main__":
    main()

"""DBSCAN clustering built on the similarity self-join.

The paper motivates the self-join as "a building block of other
algorithms, such as ... clustering algorithms". This example implements
DBSCAN exactly that way: one self-join call produces every ε-neighborhood,
then the classic core-point / density-reachability pass labels clusters —
no per-point range queries needed.

Run:  python examples/dbscan_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import PRESETS, SelfJoin

NOISE = -1


def dbscan_from_selfjoin(points: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """DBSCAN labels via a single simulated-GPU self-join."""
    result = SelfJoin(PRESETS["combined"], include_self=True).execute(points, eps)
    neighbors = result.neighbor_lists()
    n = len(points)
    core = np.array([len(neighbors.get(i, ())) >= min_pts for i in range(n)])

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for seed_point in range(n):
        if labels[seed_point] != NOISE or not core[seed_point]:
            continue
        # BFS over density-reachable points
        labels[seed_point] = cluster
        frontier = [seed_point]
        while frontier:
            q = frontier.pop()
            if not core[q]:
                continue
            for nb in neighbors[q]:
                if labels[nb] == NOISE:
                    labels[nb] = cluster
                    frontier.append(int(nb))
        cluster += 1
    return labels


def main() -> None:
    rng = np.random.default_rng(7)
    blobs = [
        rng.normal(center, 0.35, size=(400, 2))
        for center in ((2.0, 2.0), (7.0, 7.5), (2.5, 8.0))
    ]
    noise = rng.uniform(0.0, 10.0, size=(150, 2))
    points = np.concatenate(blobs + [noise])

    labels = dbscan_from_selfjoin(points, eps=0.4, min_pts=8)

    found = sorted(set(labels) - {NOISE})
    print(f"DBSCAN over {len(points)} points (eps=0.4, min_pts=8)")
    print(f"clusters found: {len(found)} (expected 3)")
    for c in found:
        members = np.flatnonzero(labels == c)
        centroid = points[members].mean(axis=0)
        print(
            f"  cluster {c}: {len(members):4d} points, "
            f"centroid ({centroid[0]:.2f}, {centroid[1]:.2f})"
        )
    print(f"noise points: {(labels == NOISE).sum()}")

    assert len(found) == 3, "the three planted blobs must be recovered"
    # each blob's 400 members should land in one cluster almost entirely
    for b, blob in enumerate(blobs):
        blob_labels = labels[b * 400 : (b + 1) * 400]
        majority = np.bincount(blob_labels[blob_labels != NOISE]).max()
        assert majority > 380
    print("ok: planted blobs recovered")


if __name__ == "__main__":
    main()

"""Near-duplicate detection via the similarity self-join.

The paper's introduction lists near-duplicate detection among the
self-join's applications. This example embeds synthetic documents as 4-D
feature vectors (hashed shingle statistics), plants near-duplicate groups,
and recovers them as connected components of the ε-pair graph — comparing
the simulated-GPU join against the SUPER-EGO CPU baseline on both results
and modeled runtime.

Run:  python examples/near_duplicate_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import PRESETS, SelfJoin
from repro.ego import SuperEgo
from repro.perfmodel.cputime import superego_seconds
from repro.util import format_seconds


def embed_corpus(rng: np.random.Generator, n_docs: int, n_dupes: int):
    """Synthetic 4-D document embeddings with planted near-duplicates."""
    base = rng.uniform(0.0, 1.0, size=(n_docs, 4))
    originals = rng.integers(0, n_docs, size=n_dupes)
    # a near-duplicate is its original plus a tiny perturbation
    dupes = base[originals] + rng.normal(0.0, 0.004, size=(n_dupes, 4))
    return np.concatenate([base, dupes]), originals


def connected_components(n: int, pairs: np.ndarray) -> np.ndarray:
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in pairs:
        if i != j:
            parent[find(int(i))] = find(int(j))
    return np.array([find(i) for i in range(n)])


def main() -> None:
    rng = np.random.default_rng(123)
    n_docs, n_dupes = 3000, 120
    corpus, originals = embed_corpus(rng, n_docs, n_dupes)
    eps = 0.02

    gpu = SelfJoin(PRESETS["combined"], include_self=False).execute(corpus, eps)
    cpu = SuperEgo(include_self=False).join(corpus, eps)
    assert np.array_equal(gpu.sorted_pairs(), cpu.sorted_pairs())
    print(
        f"corpus of {len(corpus)} embeddings; GPU join and SUPER-EGO agree on "
        f"{gpu.num_pairs} near-duplicate pairs"
    )

    labels = connected_components(len(corpus), gpu.pairs)
    recovered = 0
    for d, orig in enumerate(originals):
        if labels[n_docs + d] == labels[orig]:
            recovered += 1
    print(f"planted near-duplicates recovered: {recovered}/{n_dupes}")
    assert recovered >= int(0.95 * n_dupes)

    cpu_time = superego_seconds(cpu.counts, len(corpus), corpus.shape[1])
    print(
        f"\nmodeled runtimes: simulated GPU {format_seconds(gpu.total_seconds)} "
        f"vs 16-core SUPER-EGO {format_seconds(cpu_time.total_seconds)}"
    )


if __name__ == "__main__":
    main()

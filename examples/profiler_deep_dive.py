"""Profiler deep dive: where do the cycles go, and why does sorting help?

Uses the simulator's nvprof-style trace analysis (`repro.simt.metrics`)
and the workload-skew diagnostics (`repro.profiling.WorkloadStats`) to
explain — not just show — the paper's result on a skewed dataset:

1. quantify the workload skew (Gini, random-packing WEE);
2. run the baseline kernel traced, and break its cycles down by region;
3. run the work-queue kernel and compare the breakdowns.

Run:  python examples/profiler_deep_dive.py
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.core.sortbywl import sort_by_workload
from repro.grid import GridIndex
from repro.profiling import WorkloadStats
from repro.simt import (
    AtomicCounter,
    DeviceSpec,
    GpuMachine,
    ResultBuffer,
    profile_kernel,
)

DEVICE = DeviceSpec(name="sim-gp100-scaled", num_sms=14, warps_per_sm_slot=2)
EPS = 0.3


def traced_join(index: GridIndex, *, work_queue: bool) -> tuple:
    """One traced kernel launch over the whole dataset."""
    n = index.num_points
    if work_queue:
        order = sort_by_workload(index, "full")
        args = KernelArgs(
            index=index,
            batch=np.arange(n),
            queue_counter=AtomicCounter(),
            queue_order=order,
        )
        machine = GpuMachine(DEVICE, issue_order="fifo")
    else:
        args = KernelArgs(index=index, batch=np.arange(n))
        machine = GpuMachine(DEVICE, issue_order="random", seed=0)
    stats = machine.launch(
        selfjoin_kernel,
        args.num_threads,
        args,
        result_buffer=ResultBuffer(10**7),
        keep_traces=True,
    )
    return stats, profile_kernel(stats, DEVICE)


def main() -> None:
    rng = np.random.default_rng(77)
    pts = np.concatenate(
        [rng.normal(1.5, 0.15, (900, 2)), rng.uniform(0, 8, (900, 2))]
    )
    index = GridIndex(pts, EPS)

    print("== workload skew ==")
    stats = WorkloadStats.from_index(index)
    print(stats.render())
    print(
        f"\nA random 32-lane packing of these workloads caps WEE at "
        f"{100 * stats.random_packing_wee:.1f}% — that is the number the "
        f"paper's optimizations attack.\n"
    )

    print("== baseline kernel (GPUCALCGLOBAL, random issue order) ==")
    base_stats, base_prof = traced_join(index, work_queue=False)
    print(base_prof.render())

    print("\n== work-queue kernel (sorted D', forced order) ==")
    queue_stats, queue_prof = traced_join(index, work_queue=True)
    print(queue_prof.render())

    speedup = base_stats.cycles / queue_stats.cycles
    print(
        f"\nsame result set, same distance computations — the queue packs "
        f"warps with equal work:\n  WEE "
        f"{100 * base_prof.warp_execution_efficiency:.1f}% -> "
        f"{100 * queue_prof.warp_execution_efficiency:.1f}%, kernel cycles "
        f"{base_stats.cycles:.3g} -> {queue_stats.cycles:.3g} "
        f"({speedup:.2f}x)"
    )
    assert queue_prof.warp_execution_efficiency > base_prof.warp_execution_efficiency


if __name__ == "__main__":
    main()

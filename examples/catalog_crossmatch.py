"""Cross-matching two catalogs with the bipartite similarity join.

A classic survey-science task the self-join generalizes to: match every
detection of a new observation run (catalog A) against a reference star
catalog (catalog B) within an ε positional tolerance. The bipartite join
indexes the reference catalog once and streams A's queries through the
same optimization stack as the paper's self-join (workload sorting, work
queue, k threads per query).

Run:  python examples/catalog_crossmatch.py
"""

from __future__ import annotations

import numpy as np

from repro import DeviceSpec, PRESETS, SimilarityJoin
from repro.data import gaia_like
from repro.util import Table, format_seconds

EPS_DEG = 1.0

# Scale the simulated device down with the example's catalog sizes so the
# kernel spans many scheduling waves, as it would at survey scale (see
# EXPERIMENTS.md on device scaling).
DEVICE = DeviceSpec(name="sim-gp100-scaled", num_sms=14, warps_per_sm_slot=2)


def make_catalogs(rng: np.random.Generator):
    """A reference catalog and an observation run derived from it."""
    reference = gaia_like(8_000, seed=21)
    # the observation re-detects 60% of reference stars with astrometric
    # noise, plus new transients scattered over the sky
    redetected = reference[rng.random(len(reference)) < 0.6]
    redetected = redetected + rng.normal(0.0, 0.01, redetected.shape)
    transients = np.stack(
        [
            rng.uniform(-180, 180, 800),
            np.degrees(np.arcsin(rng.uniform(-1, 1, 800))),
        ],
        axis=1,
    )
    observations = np.concatenate([redetected, transients])
    return observations, reference, len(redetected)


def main() -> None:
    rng = np.random.default_rng(5)
    observations, reference, n_redetected = make_catalogs(rng)

    table = Table(
        ["config", "matches", "simulated time", "WEE"],
        title=(
            f"Cross-match: {len(observations)} detections vs "
            f"{len(reference)}-star reference, eps = {EPS_DEG} deg"
        ),
    )
    results = {}
    for name in ("gpucalcglobal", "workqueue_k8"):
        res = SimilarityJoin(PRESETS[name], device=DEVICE).execute(
            observations, reference, EPS_DEG
        )
        results[name] = res
        table.add_row(
            [
                name,
                res.num_pairs,
                format_seconds(res.total_seconds),
                f"{100 * res.warp_execution_efficiency:.1f}%",
            ]
        )
    print(table.render())

    base, opt = results["gpucalcglobal"], results["workqueue_k8"]
    assert np.array_equal(base.sorted_pairs(), opt.sorted_pairs())

    matched_obs = np.unique(opt.pairs[:, 0])
    redetect_matched = (matched_obs < n_redetected).sum()
    print(
        f"\nidentical match sets; {redetect_matched}/{n_redetected} "
        f"re-detections found a reference counterpart "
        f"({100 * redetect_matched / n_redetected:.1f}%), speedup "
        f"{base.total_seconds / opt.total_seconds:.1f}x from the paper's "
        f"optimizations."
    )
    assert redetect_matched / n_redetected > 0.99


if __name__ == "__main__":
    main()
